#include "core/ftim.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/simulation.h"

#include "sim/disk.h"

namespace oftt::core {
namespace {
constexpr const char* kEngineProcess = "oftt_engine";
}

Ftim::Ftim(sim::Process& process, FtimOptions options)
    : process_(&process),
      options_(std::move(options)),
      strand_(&process.create_strand("ftim")),
      rt_(&nt::NtRuntime::of(process)),
      port_(ftim_port(process.name())),
      ctr_ckpt_sent_(process.sim().telemetry().metrics().counter("oftt.checkpoints_sent")),
      ctr_ckpt_received_(
          process.sim().telemetry().metrics().counter("oftt.checkpoints_received")),
      ctr_ckpt_corrupt_(
          process.sim().telemetry().metrics().counter("oftt.checkpoints_corrupt")),
      ctr_engine_restarts_(
          process.sim().telemetry().metrics().counter("oftt.engine_restarts")),
      ckpt_bytes_(process.sim().telemetry().metrics().histogram(
          "oftt.checkpoint_bytes", {256, 1024, 4096, 16384, 65536, 262144})),
      hb_timer_(*strand_),
      ckpt_timer_(*strand_),
      engine_check_timer_(*strand_) {
  if (options_.component.empty()) options_.component = process.name();
  ckpt_peers_ = options_.peer_nodes;
  if (ckpt_peers_.empty() && options_.peer_node >= 0) ckpt_peers_ = {options_.peer_node};

  // The FTIM thread owns the control/checkpoint port.
  strand_->bind(port_, [this](const sim::Datagram& d) { on_port(d); });

  if (options_.install_iat_hook) {
    // Intercept CreateThread so dynamically created threads become
    // discoverable for checkpointing (§3.1).
    auto original = rt_->hook_create_thread(
        [this](const std::string& name, std::uint64_t start) -> nt::Task& {
          nt::Task& task = original_create_thread_(name, start);
          hooked_tids_.insert(task.tid());
          return task;
        });
    original_create_thread_ = std::move(original);
  }

  // A restarted instance recovers the newest checkpoint from local disk
  // (either one it took as primary or one it received as backup), so a
  // local restart after a transient fault does not lose state.
  auto& disk = sim::DiskStore::of(process.sim());
  if (auto blob = disk.read(process.node().id(), disk_key())) {
    CheckpointImage img;
    if (CheckpointImage::unmarshal(*blob, img)) {
      ckpt_seq_ = img.seq;
      latest_ = std::move(img);
    }
  }

  register_with_engine();
  hb_timer_.start(options_.heartbeat_period, [this] { heartbeat_tick(); });
  if (options_.restart_engine_if_dead) {
    engine_check_timer_.start(options_.engine_check_period, [this] { check_engine(); });
  }
}

std::vector<nt::Task*> Ftim::discoverable_tasks() const {
  std::vector<nt::Task*> out;
  for (nt::Task* t : rt_->all_tasks()) {
    if (t->statically_created() || hooked_tids_.count(t->tid()) != 0) out.push_back(t);
  }
  return out;
}

void Ftim::register_with_engine() {
  FtRegister reg;
  reg.component = options_.component;
  reg.process_name = process_->name();
  reg.ftim_port = port_;
  reg.kind = options_.kind;
  reg.max_local_restarts = options_.max_local_restarts;
  reg.switchover_on_permanent = options_.switchover_on_permanent;
  reg.currently_active = active_;
  reg.incarnation = incarnation_;
  send_engine(reg.encode());
}

void Ftim::send_engine(const Buffer& payload) {
  process_->send(0, process_->node().id(), kEnginePort, payload, port_);
}

void Ftim::publish_event(obs::EventKind kind, std::string detail, std::uint64_t a,
                         std::uint64_t b) {
  obs::Event e;
  e.kind = kind;
  e.node = process_->node().id();
  e.component = options_.component;
  e.detail = std::move(detail);
  e.a = a;
  e.b = b;
  process_->sim().telemetry().bus().publish(std::move(e));
}

void Ftim::heartbeat_tick() {
  FtHeartbeat hb;
  hb.component = options_.component;
  hb.seq = ++hb_seq_;
  send_engine(hb.encode());
  // Periodic re-registration keeps a restarted engine informed.
  if (++hb_count_ % 10 == 0) register_with_engine();
}

void Ftim::take_checkpoint() {
  if (!active_ || options_.kind != FtimKind::kOpcClient) return;
  CheckpointImage img = capture_checkpoint(*rt_, options_.checkpoint_mode, cells_, ++ckpt_seq_,
                                           incarnation_, discoverable_tasks());
  img.taken_at = process_->sim().now();
  Buffer blob = img.marshal();
  last_checkpoint_bytes_ = blob.size();
  ++checkpoints_sent_;
  ctr_ckpt_sent_.inc();
  ckpt_bytes_.record(static_cast<std::int64_t>(blob.size()));
  publish_event(obs::EventKind::kCheckpointTaken, "", ckpt_seq_, blob.size());
  sim::DiskStore::of(process_->sim()).write(process_->node().id(), disk_key(), blob);
  if (ckpt_peers_.empty()) return;
  Buffer frame = encode_checkpoint(options_.component, blob);
  // Fan out to every live backup replica. Ship on the first configured
  // network; alternate on the dual-network configuration for a little
  // extra loss resilience.
  int net = options_.networks[ckpt_seq_ % options_.networks.size()];
  for (int peer : ckpt_peers_) {
    process_->send(net, peer, port_, frame, port_);
  }
}

std::uint64_t Ftim::min_acked_seq() const {
  if (ckpt_peers_.empty()) return 0;
  std::uint64_t lowest = ~std::uint64_t{0};
  for (int peer : ckpt_peers_) {
    auto it = acked_by_peer_.find(peer);
    lowest = std::min(lowest, it != acked_by_peer_.end() ? it->second : 0);
  }
  return lowest;
}

std::uint64_t Ftim::acked_by(int node) const {
  auto it = acked_by_peer_.find(node);
  return it != acked_by_peer_.end() ? it->second : 0;
}

HRESULT Ftim::save_now() {
  if (!active_) return OFTT_E_NOT_PRIMARY;
  take_checkpoint();
  return S_OK;
}

void Ftim::sel_save(const std::string& region, std::uint32_t offset, std::uint32_t size) {
  cells_.push_back(CellSpec{region, offset, size});
}

HRESULT Ftim::distress(const std::string& reason) {
  FtDistress d;
  d.component = options_.component;
  d.reason = reason;
  send_engine(d.encode());
  return S_OK;
}

HRESULT Ftim::watchdog_create(const std::string& name, sim::SimTime timeout) {
  WatchdogMsg wd;
  wd.op = MsgKind::kWatchdogCreate;
  wd.component = options_.component;
  wd.watchdog = name;
  wd.timeout = timeout;
  send_engine(wd.encode());
  return S_OK;
}

HRESULT Ftim::watchdog_reset(const std::string& name, sim::SimTime timeout) {
  WatchdogMsg wd;
  wd.op = MsgKind::kWatchdogReset;
  wd.component = options_.component;
  wd.watchdog = name;
  wd.timeout = timeout;
  send_engine(wd.encode());
  return S_OK;
}

HRESULT Ftim::set_recovery_rule(int max_local_restarts, int switchover_on_permanent) {
  SetRule rule;
  rule.component = options_.component;
  rule.max_local_restarts = max_local_restarts;
  rule.switchover_on_permanent = switchover_on_permanent;
  send_engine(rule.encode());
  // Keep re-registrations consistent with the new rule.
  options_.max_local_restarts = max_local_restarts;
  options_.switchover_on_permanent = switchover_on_permanent;
  return S_OK;
}

HRESULT Ftim::watchdog_delete(const std::string& name) {
  WatchdogMsg wd;
  wd.op = MsgKind::kWatchdogDelete;
  wd.component = options_.component;
  wd.watchdog = name;
  send_engine(wd.encode());
  return S_OK;
}

void Ftim::handle_set_active(const SetActive& msg) {
  role_ = msg.role;
  incarnation_ = msg.incarnation;
  if (msg.active == active_) return;
  active_ = msg.active;
  if (active_) {
    bool restored = false;
    if (latest_) {
      int anomalies = restore_checkpoint(*rt_, *latest_);
      restored = true;
      OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                    ": ACTIVATED with checkpoint seq ", latest_->seq,
                    anomalies ? " (anomalies)" : "");
      publish_event(obs::EventKind::kCheckpointApplied, "restored on activation",
                    latest_->seq, static_cast<std::uint64_t>(anomalies));
    } else {
      OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                    ": ACTIVATED cold (no checkpoint)");
    }
    publish_event(obs::EventKind::kComponentActivated,
                  restored ? "activated from checkpoint" : "activated cold",
                  latest_ ? latest_->seq : 0, incarnation_);
    if (options_.kind == FtimKind::kOpcClient) {
      ckpt_timer_.start(options_.checkpoint_period, [this] { take_checkpoint(); });
    }
    if (on_activate_) on_activate_(restored);
  } else {
    ckpt_timer_.stop();
    OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(), ": DEACTIVATED");
    publish_event(obs::EventKind::kComponentDeactivated, "", 0, incarnation_);
    if (on_deactivate_) on_deactivate_();
  }
}

void Ftim::on_port(const sim::Datagram& d) {
  switch (static_cast<MsgKind>(wire_kind(d.payload))) {
    case MsgKind::kSetActive: {
      SetActive msg;
      if (SetActive::decode(d.payload, msg)) handle_set_active(msg);
      break;
    }
    case MsgKind::kCheckpoint: {
      std::string component;
      Buffer blob;
      if (!decode_checkpoint(d.payload, component, blob)) return;
      CheckpointImage img;
      if (!CheckpointImage::unmarshal(blob, img)) {
        ++checkpoints_rejected_;
        ctr_ckpt_corrupt_.inc();
        return;
      }
      // Reject stale images: lower incarnation, or not newer than held.
      if (latest_ && (img.incarnation < latest_->incarnation ||
                      (img.incarnation == latest_->incarnation && img.seq <= latest_->seq))) {
        ++checkpoints_rejected_;
        return;
      }
      std::uint64_t acked_seq = img.seq;
      latest_ = std::move(img);
      ++checkpoints_received_;
      ctr_ckpt_received_.inc();
      // Confirm receipt so the primary can watch replication lag. Reply
      // to whoever sent the image — with checkpoint fan-out the sender
      // is whichever replica is currently primary, not a fixed peer.
      process_->send(d.network_id, d.src_node, port_,
                     encode_checkpoint_ack(options_.component, acked_seq), port_);
      // Keep the local-disk copy current so a restarted instance on
      // this node recovers the newest state it ever saw.
      sim::DiskStore::of(process_->sim()).write(process_->node().id(), disk_key(), blob);
      break;
    }
    case MsgKind::kCheckpointAck: {
      std::string component;
      std::uint64_t seq = 0;
      if (!decode_checkpoint_ack(d.payload, component, seq)) return;
      if (seq > peer_acked_seq_) peer_acked_seq_ = seq;
      std::uint64_t& acked = acked_by_peer_[d.src_node];
      acked = std::max(acked, seq);
      break;
    }
    default:
      break;
  }
}

void Ftim::check_engine() {
  auto engine = process_->node().find_process(kEngineProcess);
  if (engine && engine->alive()) return;
  OFTT_LOG_WARN("oftt/ftim", process_->node().name(), "/", process_->name(),
                ": engine is down — restarting it");
  ctr_engine_restarts_.inc();
  publish_event(obs::EventKind::kEngineRestart, "engine dead, restarting", 0, 0);
  process_->node().restart_process(kEngineProcess);
  // The fresh engine knows nothing; re-register right away.
  register_with_engine();
}

}  // namespace oftt::core
