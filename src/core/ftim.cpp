#include "core/ftim.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/simulation.h"

#include "sim/disk.h"

namespace oftt::core {
namespace {
constexpr const char* kEngineProcess = "oftt_engine";
}

Ftim::Ftim(sim::Process& process, FtimOptions options)
    : process_(&process),
      options_(std::move(options)),
      strand_(&process.create_strand("ftim")),
      rt_(&nt::NtRuntime::of(process)),
      port_(ftim_port(process.name())),
      ctr_ckpt_sent_(process.sim().telemetry().metrics().counter("oftt.checkpoints_sent")),
      ctr_ckpt_received_(
          process.sim().telemetry().metrics().counter("oftt.checkpoints_received")),
      ctr_ckpt_corrupt_(
          process.sim().telemetry().metrics().counter("oftt.checkpoints_corrupt")),
      ctr_engine_restarts_(
          process.sim().telemetry().metrics().counter("oftt.engine_restarts")),
      ctr_full_bytes_(
          process.sim().telemetry().metrics().counter("oftt.ckpt_full_bytes")),
      ctr_delta_bytes_(
          process.sim().telemetry().metrics().counter("oftt.ckpt_delta_bytes")),
      ctr_journal_recoveries_(
          process.sim().telemetry().metrics().counter("oftt.journal_recoveries")),
      ckpt_bytes_(process.sim().telemetry().metrics().histogram(
          "oftt.checkpoint_bytes", {256, 1024, 4096, 16384, 65536, 262144})),
      replay_records_(process.sim().telemetry().metrics().histogram(
          "oftt.recovery_replay_records", {1, 2, 4, 8, 16, 32, 64})),
      gauge_ckpt_rate_(process.sim().telemetry().metrics().gauge("oftt.ckpt_bytes_per_s")),
      gauge_decision_rate_(
          process.sim().telemetry().metrics().gauge("oftt.decision_bytes_per_s")),
      gauge_staleness_(
          process.sim().telemetry().metrics().gauge("oftt.backup_staleness_ns")),
      hb_timer_(*strand_),
      ckpt_timer_(*strand_),
      engine_check_timer_(*strand_),
      governor_timer_(*strand_) {
  if (options_.component.empty()) options_.component = process.name();
  validate_ftim_options(options_);
  ckpt_peers_ = options_.peer_nodes;
  if (ckpt_peers_.empty() && options_.peer_node >= 0) ckpt_peers_ = {options_.peer_node};

  // Resolve the replication tuning once; the policy object answers every
  // cadence/shape/discipline question against this config.
  rcfg_.checkpoint_period = options_.checkpoint_period;
  rcfg_.full_checkpoint_interval = options_.full_checkpoint_interval;
  rcfg_.deltas_enabled = options_.checkpoint_mode == CheckpointMode::kFull &&
                         options_.full_checkpoint_interval > 1 && options_.track_dirty_ranges;
  rcfg_.delta_stream_period =
      options_.delta_stream_period > 0
          ? options_.delta_stream_period
          : std::max<sim::SimTime>(sim::milliseconds(1), options_.checkpoint_period / 4);
  rcfg_.promotion_staleness_bound = options_.promotion_staleness_bound;
  policy_ = make_policy(options_.replication);

  // The FTIM thread owns the control/checkpoint port.
  strand_->bind(port_, [this](const sim::Datagram& d) { on_port(d); });

  // All FTIM <-> FTIM traffic (checkpoints, deltas, pulls, pull replies,
  // nacks) rides a reliable ordered session per peer. Checkpoint frames
  // are tagged with their seq so the session's acked-tag watermark is
  // the replication watermark. Engine control (SetActive) stays raw: it
  // is loopback-only and idempotent.
  transport::SessionConfig scfg;
  scfg.networks = options_.networks;
  scfg.window_bytes = 1024 * 1024;
  scfg.queue_cap = 128;
  scfg.queue_policy = transport::QueuePolicy::kReject;
  scfg.rto_initial = sim::milliseconds(50);
  scfg.rto_max = sim::milliseconds(500);
  ep_ = std::make_unique<transport::Endpoint>(*strand_, port_, scfg);
  ep_->on_deliver([this](int src_node, int network_id, const Buffer& payload) {
    on_frame(src_node, network_id, payload);
  });

  if (options_.install_iat_hook) {
    // Intercept CreateThread so dynamically created threads become
    // discoverable for checkpointing (§3.1).
    auto original = rt_->hook_create_thread(
        [this](const std::string& name, std::uint64_t start) -> nt::Task& {
          nt::Task& task = original_create_thread_(name, start);
          hooked_tids_.insert(task.tid());
          return task;
        });
    original_create_thread_ = std::move(original);
  }

  // A restarted instance recovers the newest checkpoint chain from the
  // node-local journal (state it took as primary or received as
  // backup), so a local restart — or a full node reboot — does not come
  // back empty and only needs the missing suffix from the peers.
  if (options_.journal_checkpoints) {
    store::JournalOptions jopts;
    jopts.segment_bytes = options_.journal_segment_bytes;
    journal_ = std::make_unique<store::Journal>(process.sim(), process.node().id(),
                                                "oftt.jrnl." + options_.component, jopts);

    // The active policy is journaled separately (tiny snapshot-free log,
    // two segments max): the checkpoint journal compacts on every full
    // checkpoint and would eventually retire a kPolicy record living
    // there. The newest record wins; absence means the configured mode.
    store::JournalOptions popts;
    popts.segment_bytes = 256;
    popts.auto_compact = false;
    popts.max_segments = 2;
    policy_journal_ = std::make_unique<store::Journal>(
        process.sim(), process.node().id(), "oftt.plcy." + options_.component, popts);
    for (const store::Record& r : policy_journal_->recover()) {
      if (r.type != store::RecordType::kPolicy || r.payload.empty()) continue;
      if (r.id < policy_record_seq_) continue;
      policy_record_seq_ = r.id;
      auto mode = static_cast<ReplicationMode>(r.payload[0]);
      if (mode != policy_->mode()) {
        policy_ = make_policy(mode);
        OFTT_LOG_INFO("oftt/ftim", process.node().name(), "/", process.name(),
                      ": restored replication policy ", policy_->name(), " from journal");
      }
    }

    recover_from_journal();
  }

  if (options_.governor.enabled) {
    governor_.emplace(options_.governor);
    governor_timer_.start(options_.governor.period, [this] { governor_tick(); });
  }

  register_with_engine();
  hb_timer_.start(options_.heartbeat_period, [this] { heartbeat_tick(); });
  if (options_.restart_engine_if_dead) {
    engine_check_timer_.start(options_.engine_check_period, [this] { check_engine(); });
  }
}

std::vector<nt::Task*> Ftim::discoverable_tasks() const {
  std::vector<nt::Task*> out;
  for (nt::Task* t : rt_->all_tasks()) {
    if (t->statically_created() || hooked_tids_.count(t->tid()) != 0) out.push_back(t);
  }
  return out;
}

void Ftim::register_with_engine() {
  FtRegister reg;
  reg.component = options_.component;
  reg.process_name = process_->name();
  reg.ftim_port = port_;
  reg.kind = options_.kind;
  reg.max_local_restarts = options_.max_local_restarts;
  reg.switchover_on_permanent = options_.switchover_on_permanent;
  reg.currently_active = active_;
  reg.incarnation = incarnation_;
  send_engine(reg.encode());
}

void Ftim::send_engine(const Buffer& payload) {
  process_->send(0, process_->node().id(), kEnginePort, payload, port_);
}

void Ftim::publish_event(obs::EventKind kind, std::string detail, std::uint64_t a,
                         std::uint64_t b) {
  obs::Event e;
  e.kind = kind;
  e.node = process_->node().id();
  e.component = options_.component;
  e.detail = std::move(detail);
  e.a = a;
  e.b = b;
  process_->sim().telemetry().bus().publish(std::move(e));
}

void Ftim::heartbeat_tick() {
  FtHeartbeat hb;
  hb.component = options_.component;
  hb.seq = ++hb_seq_;
  hb.policy = policy_->mode();
  // Readiness judged against "now": the primary is (presumably) alive
  // while heartbeats flow, so now IS the freshest failure-evidence time
  // the engine could ever hold. The engine keeps the last reported
  // verdict, which therefore dates from just before any failure.
  hb.ready = promotion_ready_at(process_->sim().now());
  hb.applied_at = applied_at_;
  send_engine(hb.encode());
  if (!active_ && applied_at_ > 0) {
    gauge_staleness_.set(
        static_cast<std::int64_t>(process_->sim().now() - applied_at_));
  }
  // Periodic re-registration keeps a restarted engine informed.
  if (++hb_count_ % 10 == 0) register_with_engine();
}

void Ftim::take_checkpoint() {
  if (!active_ || options_.kind != FtimKind::kOpcClient) return;
  const ReplicationPolicy::CaptureState cap{force_full_, ckpt_seq_, ckpts_since_full_};
  const bool delta = policy_->capture_as_delta(rcfg_, cap);
  const std::uint64_t base = ckpt_seq_;
  CheckpointImage img =
      delta ? capture_delta_checkpoint(*rt_, ++ckpt_seq_, base, incarnation_,
                                       discoverable_tasks())
            : capture_checkpoint(*rt_, options_.checkpoint_mode, cells_, ++ckpt_seq_,
                                 incarnation_, discoverable_tasks());
  img.decision_seq = decision_seq_;
  img.taken_at = process_->sim().now();
  // Everything up to this instant is captured: the dirty tracking now
  // measures what the NEXT delta must carry.
  rt_->memory().clear_all_dirty();
  if (delta) {
    ++ckpts_since_full_;
  } else {
    ckpts_since_full_ = 0;
    force_full_ = false;
  }
  Buffer blob = img.marshal();
  last_checkpoint_bytes_ = blob.size();
  ++checkpoints_sent_;
  if (delta) ++delta_checkpoints_sent_; else ++full_checkpoints_sent_;
  ctr_ckpt_sent_.inc();
  ckpt_bytes_.record(static_cast<std::int64_t>(blob.size()));
  publish_event(obs::EventKind::kCheckpointTaken, delta ? "delta" : "full", ckpt_seq_,
                blob.size());
  journal_checkpoint(img, blob);
  if (ckpt_peers_.empty()) return;
  Buffer frame = encode_checkpoint(options_.component, blob);
  // Fan out to every backup replica over its session; the session
  // handles retransmission, ordering and (on the dual-network
  // configuration) alternating networks across retries.
  for (int peer : ckpt_peers_) {
    if (!ep_->send(peer, frame, /*tag=*/ckpt_seq_, nullptr, transport::kClassCheckpoint)) {
      // Session queue full — the peer has been unreachable long enough
      // to absorb the whole window. Shed this frame; the stream resumes
      // self-contained once the peer is back.
      force_full_ = true;
      continue;
    }
    if (delta) {
      delta_bytes_sent_ += blob.size();
      ctr_delta_bytes_.inc(static_cast<std::int64_t>(blob.size()));
    } else {
      full_bytes_sent_ += blob.size();
      ctr_full_bytes_.inc(static_cast<std::int64_t>(blob.size()));
    }
  }
}

void Ftim::journal_checkpoint(const CheckpointImage& img, const Buffer& blob) {
  if (!journal_) return;
  const bool is_delta = img.mode == CheckpointMode::kDelta;
  if (!journal_->append(
          is_delta ? store::RecordType::kDelta : store::RecordType::kSnapshot, img.seq,
          is_delta ? img.base_seq : 0, blob)) {
    OFTT_LOG_WARN("oftt/ftim", process_->node().name(), "/", process_->name(),
                  ": journal append failed for seq ", img.seq, " (disk full?)");
  }
}

void Ftim::recover_from_journal() {
  store::RecoveredImage rec = journal_->recover_image();
  if (!rec.valid) return;
  CheckpointImage img;
  if (!CheckpointImage::unmarshal(rec.snapshot, img)) return;
  std::uint64_t replayed = 1;
  for (const store::Record& d : rec.deltas) {
    CheckpointImage delta;
    if (!CheckpointImage::unmarshal(d.payload, delta)) break;
    if (delta.incarnation != img.incarnation || delta.base_seq != img.seq) break;
    if (!apply_delta(img, delta).applied()) break;
    ++replayed;
  }
  ckpt_seq_ = img.seq;
  latest_ = std::move(img);
  // Decision-log records newer than the image's watermark survive in
  // the journal suffix; stash them for replay once the runtime holds
  // the base state (fold-on-receipt or activation restore).
  decisions_applied_ = latest_->decision_seq;
  decision_seq_ = latest_->decision_seq;
  for (store::Record& drec : journal_->recover()) {
    if (drec.type == store::RecordType::kDecision && drec.id > decisions_applied_) {
      pending_decisions_[drec.id] = std::move(drec.payload);
    }
  }
  recovered_from_journal_ = true;
  journal_replayed_records_ = replayed;
  ctr_journal_recoveries_.inc();
  replay_records_.record(static_cast<std::int64_t>(replayed));
  OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                ": recovered checkpoint seq ", latest_->seq, " from local journal (",
                replayed, " records)");
  publish_event(obs::EventKind::kJournalRecovered, "recovered from local journal", replayed,
                latest_->seq);
  // Ask the peers for the suffix this node missed while it was down.
  // Whoever is currently primary answers; everyone else ignores it.
  if (ckpt_peers_.empty()) return;
  CheckpointPull pull;
  pull.component = options_.component;
  pull.have_seq = latest_->seq;
  pull.have_incarnation = latest_->incarnation;
  pull.from_node = process_->node().id();
  Buffer frame = pull.encode();
  for (int peer : ckpt_peers_) ep_->send(peer, frame);
}

std::uint64_t Ftim::peer_acked_seq() const {
  std::uint64_t highest = 0;
  for (int peer : ckpt_peers_) {
    highest = std::max(highest, ep_->acked_tag(peer, transport::kClassCheckpoint));
  }
  return highest;
}

std::uint64_t Ftim::min_acked_seq() const {
  if (ckpt_peers_.empty()) return 0;
  std::uint64_t lowest = ~std::uint64_t{0};
  for (int peer : ckpt_peers_) {
    lowest = std::min(lowest, ep_->acked_tag(peer, transport::kClassCheckpoint));
  }
  return lowest;
}

std::uint64_t Ftim::acked_by(int node) const {
  return ep_->acked_tag(node, transport::kClassCheckpoint);
}

HRESULT Ftim::save_now() {
  if (!active_) return OFTT_E_NOT_PRIMARY;
  take_checkpoint();
  return S_OK;
}

void Ftim::sel_save(const std::string& region, std::uint32_t offset, std::uint32_t size) {
  cells_.push_back(CellSpec{region, offset, size});
}

HRESULT Ftim::distress(const std::string& reason) {
  FtDistress d;
  d.component = options_.component;
  d.reason = reason;
  send_engine(d.encode());
  return S_OK;
}

HRESULT Ftim::watchdog_create(const std::string& name, sim::SimTime timeout) {
  WatchdogMsg wd;
  wd.op = MsgKind::kWatchdogCreate;
  wd.component = options_.component;
  wd.watchdog = name;
  wd.timeout = timeout;
  send_engine(wd.encode());
  return S_OK;
}

HRESULT Ftim::watchdog_reset(const std::string& name, sim::SimTime timeout) {
  WatchdogMsg wd;
  wd.op = MsgKind::kWatchdogReset;
  wd.component = options_.component;
  wd.watchdog = name;
  wd.timeout = timeout;
  send_engine(wd.encode());
  return S_OK;
}

HRESULT Ftim::set_recovery_rule(int max_local_restarts, int switchover_on_permanent) {
  SetRule rule;
  rule.component = options_.component;
  rule.max_local_restarts = max_local_restarts;
  rule.switchover_on_permanent = switchover_on_permanent;
  send_engine(rule.encode());
  // Keep re-registrations consistent with the new rule.
  options_.max_local_restarts = max_local_restarts;
  options_.switchover_on_permanent = switchover_on_permanent;
  return S_OK;
}

HRESULT Ftim::watchdog_delete(const std::string& name) {
  WatchdogMsg wd;
  wd.op = MsgKind::kWatchdogDelete;
  wd.component = options_.component;
  wd.watchdog = name;
  send_engine(wd.encode());
  return S_OK;
}

void Ftim::handle_set_active(const SetActive& msg) {
  role_ = msg.role;
  incarnation_ = msg.incarnation;
  if (msg.active == active_) return;
  active_ = msg.active;
  if (active_) {
    // A restore marks every region dirty and starts a new incarnation:
    // the first checkpoint of this reign must be self-contained.
    force_full_ = true;
    // Warm/semi replicas folded images into the live runtime as they
    // arrived (runtime_current_), so they skip the bulk restore —
    // that is the whole point of paying for streaming.
    const bool need_restore =
        latest_ && (policy_->restore_on_activate() || !runtime_current_);
    int anomalies = 0;
    if (need_restore) {
      if (options_.restore_rate_bytes_per_s > 0) {
        // Model the restore as taking payload/rate seconds so benches
        // can see the switchover cost the policy is meant to hide.
        const auto delay = static_cast<sim::SimTime>(
            static_cast<double>(latest_->payload_bytes()) * 1e9 /
            static_cast<double>(options_.restore_rate_bytes_per_s));
        strand_->schedule_after(delay, [this] {
          if (!active_ || !latest_) return;
          const int a = restore_checkpoint(*rt_, *latest_);
          runtime_current_ = true;
          replay_pending_decisions();
          finish_activation(/*restored=*/true, a);
        });
        return;
      }
      anomalies = restore_checkpoint(*rt_, *latest_);
    }
    runtime_current_ = true;  // the active side defines the state
    replay_pending_decisions();
    finish_activation(need_restore, anomalies);
  } else {
    ckpt_timer_.stop();
    OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(), ": DEACTIVATED");
    publish_event(obs::EventKind::kComponentDeactivated, "", 0, incarnation_);
    if (on_deactivate_) on_deactivate_();
  }
}

void Ftim::finish_activation(bool restored, int anomalies) {
  resync_pending_ = false;
  if (restored && latest_) {
    OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                  ": ACTIVATED with checkpoint seq ", latest_->seq,
                  anomalies ? " (anomalies)" : "");
    publish_event(obs::EventKind::kCheckpointApplied, "restored on activation",
                  latest_->seq, static_cast<std::uint64_t>(anomalies));
  } else if (latest_) {
    OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                  ": ACTIVATED in place (replica already current, seq ", latest_->seq, ")");
  } else {
    OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                  ": ACTIVATED cold (no checkpoint)");
  }
  publish_event(obs::EventKind::kComponentActivated,
                restored ? "activated from checkpoint"
                         : (latest_ ? "promoted in place" : "activated cold"),
                latest_ ? latest_->seq : 0, incarnation_);
  if (options_.kind == FtimKind::kOpcClient) {
    ckpt_timer_.start(policy_->capture_period(rcfg_), [this] { take_checkpoint(); });
    if (policy_->mode() == ReplicationMode::kSemiActive) {
      // A promoted follower keeps proposing from where it applied; its
      // followers need a fresh base image before the log means anything.
      decision_seq_ = std::max(decision_seq_, decisions_applied_);
      take_checkpoint();
    }
  }
  if (on_activate_) on_activate_(restored);
}

void Ftim::on_port(const sim::Datagram& d) {
  // Session frames first: the endpoint consumes transport data/acks and
  // re-delivers application payloads through on_frame in order.
  if (ep_ && ep_->handle(d)) return;
  on_frame(d.src_node, d.network_id, d.payload);
}

void Ftim::on_frame(int src_node, int network_id, const Buffer& payload) {
  (void)network_id;
  switch (static_cast<MsgKind>(wire_kind(payload))) {
    case MsgKind::kSetActive: {
      SetActive msg;
      if (SetActive::decode(payload, msg)) handle_set_active(msg);
      break;
    }
    case MsgKind::kCheckpoint: {
      handle_checkpoint(src_node, payload);
      break;
    }
    case MsgKind::kCheckpointNack: {
      std::string component;
      std::uint64_t have_seq = 0;
      if (!decode_checkpoint_nack(payload, component, have_seq)) return;
      // The peer could not apply a delta (sequence gap / wrong
      // incarnation): fall back to a self-contained image next round.
      ++need_full_nacks_;
      force_full_ = true;
      // Semi-active followers stall until they hold a base image, so
      // answer resync nacks immediately instead of at the (long)
      // safety-net cadence.
      if (active_ && policy_->followers_execute()) take_checkpoint();
      break;
    }
    case MsgKind::kCheckpointPull: {
      CheckpointPull msg;
      if (CheckpointPull::decode(payload, msg)) handle_checkpoint_pull(msg);
      break;
    }
    case MsgKind::kDecision: {
      DecisionMsg msg;
      if (DecisionMsg::decode(payload, msg)) handle_decision(src_node, msg);
      break;
    }
    case MsgKind::kPolicySwitch: {
      PolicySwitchMsg msg;
      if (PolicySwitchMsg::decode(payload, msg)) handle_policy_switch(msg);
      break;
    }
    default:
      break;
  }
}

Ftim::Accept Ftim::accept_image(CheckpointImage&& img, const Buffer& blob) {
  if (img.mode == CheckpointMode::kDelta) {
    if (!latest_ || latest_->incarnation != img.incarnation ||
        latest_->seq != img.base_seq) {
      ++checkpoints_rejected_;
      // Distinguish "already have it" from "cannot get there from
      // here": only a genuine gap warrants forcing a full image.
      const bool stale =
          latest_ && (img.incarnation < latest_->incarnation ||
                      (img.incarnation == latest_->incarnation && img.seq <= latest_->seq));
      return stale ? Accept::kStale : Accept::kGap;
    }
    journal_checkpoint(img, blob);
    if (!apply_delta(*latest_, img).applied()) {
      // The hardened merge refused the frame (stale base / foreign
      // incarnation slipping past the pre-checks): treat it as a gap so
      // the primary falls back to a self-contained image.
      ++checkpoints_rejected_;
      return Accept::kGap;
    }
    ++deltas_applied_;
    ++checkpoints_received_;
    ctr_ckpt_received_.inc();
    return Accept::kApplied;
  }
  // Reject stale images: lower incarnation, or not newer than held.
  if (latest_ && (img.incarnation < latest_->incarnation ||
                  (img.incarnation == latest_->incarnation && img.seq <= latest_->seq))) {
    ++checkpoints_rejected_;
    return Accept::kStale;
  }
  // Journal before adopting: a crash between the two leaves the
  // journal ahead of memory, which recovery tolerates (it replays the
  // newest durable chain).
  journal_checkpoint(img, blob);
  latest_ = std::move(img);
  ++checkpoints_received_;
  ++full_checkpoints_received_;
  ctr_ckpt_received_.inc();
  return Accept::kApplied;
}

void Ftim::handle_checkpoint(int src_node, const Buffer& payload) {
  std::string component;
  Buffer blob;
  if (!decode_checkpoint(payload, component, blob)) return;
  CheckpointImage img;
  if (!CheckpointImage::unmarshal(blob, img)) {
    ++checkpoints_rejected_;
    ctr_ckpt_corrupt_.inc();
    return;
  }
  const bool is_delta = img.mode == CheckpointMode::kDelta;
  // Warm/semi replicas fold arriving state straight into the live
  // runtime; keep a copy of the frame's own image so a delta folds only
  // its changed cells, not the whole accumulated base.
  const bool fold = policy_->apply_on_receipt() && !active_;
  CheckpointImage fold_img;
  if (fold) fold_img = img;
  switch (accept_image(std::move(img), blob)) {
    case Accept::kApplied:
      applied_at_ = process_->sim().now();
      if (fold && latest_) {
        if (!runtime_current_) {
          // First contact (or post-gap resync): adopt the whole
          // accumulated base, not just this frame's cells.
          const int anomalies = restore_checkpoint(*rt_, *latest_);
          runtime_current_ = true;
          resync_pending_ = false;
          publish_event(obs::EventKind::kCheckpointApplied, "folded full state on receipt",
                        latest_->seq, static_cast<std::uint64_t>(anomalies));
          if (policy_->followers_execute()) {
            decisions_applied_ = std::max(decisions_applied_, latest_->decision_seq);
            decision_seq_ = std::max(decision_seq_, decisions_applied_);
          }
          replay_pending_decisions();
        } else if (policy_->followers_execute() && fold_img.decision_seq > 0 &&
                   decisions_applied_ >= fold_img.decision_seq) {
          // Semi-active follower already executed past this image via
          // the decision log: keep the journal copy (cold-restart base)
          // but leave the live runtime alone.
        } else {
          const int anomalies = restore_checkpoint(*rt_, fold_img);
          publish_event(obs::EventKind::kCheckpointApplied, "folded on receipt",
                        fold_img.seq, static_cast<std::uint64_t>(anomalies));
          if (policy_->followers_execute()) {
            decisions_applied_ = std::max(decisions_applied_, fold_img.decision_seq);
            decision_seq_ = std::max(decision_seq_, decisions_applied_);
          }
          replay_pending_decisions();
        }
      }
      break;
    case Accept::kStale:
      // No explicit ack: the transport session already confirmed the
      // tagged frame, which is what the primary's watermark reads.
      // Stale re-deliveries (session reset, raced pull reply) drop
      // silently — nacking them would force a redundant full.
      break;
    case Accept::kGap:
      // A delta whose base we do not hold: ask the primary for a
      // self-contained image. (Full images never gap.)
      if (is_delta) {
        ep_->send(src_node,
                  encode_checkpoint_nack(options_.component, latest_ ? latest_->seq : 0));
      }
      break;
  }
}

void Ftim::handle_checkpoint_pull(const CheckpointPull& msg) {
  // Only the active primary owns the authoritative chain; everyone else
  // stays quiet and lets it answer.
  if (!active_ || options_.kind != FtimKind::kOpcClient) return;
  if (msg.component != options_.component || msg.from_node < 0) return;
  // Delta-suffix path: the requester's recovered state is a valid base
  // in our current incarnation, and our journal still holds an unbroken
  // delta chain from there to the newest checkpoint. (Compaction on the
  // last full checkpoint retires older-incarnation records, so chain
  // ids cannot alias across incarnations.)
  if (journal_ && msg.have_seq > 0 && msg.have_incarnation == incarnation_) {
    struct SuffixDelta {
      std::uint64_t seq;
      Buffer blob;
    };
    std::vector<SuffixDelta> suffix;
    std::size_t suffix_bytes = 0;
    std::uint64_t cur = msg.have_seq;
    std::vector<store::Record> records = journal_->recover();
    for (store::Record& r : records) {
      if (r.type == store::RecordType::kDelta && r.base == cur) {
        cur = r.id;
        suffix_bytes += r.payload.size();
        suffix.push_back(SuffixDelta{r.id, std::move(r.payload)});
      }
    }
    if (cur == ckpt_seq_) {
      // Ship the chain as individual session frames: the session keeps
      // them in order on the wire (the old single-frame batch existed
      // only because separate datagrams reordered under latency
      // jitter), and any live delta taken after this point queues
      // strictly behind them on the same session.
      for (SuffixDelta& d : suffix) {
        ep_->send(msg.from_node, encode_checkpoint(options_.component, d.blob),
                  /*tag=*/d.seq, nullptr, transport::kClassCheckpoint);
      }
      if (!suffix.empty()) {
        delta_bytes_sent_ += suffix_bytes;
        ctr_delta_bytes_.inc(static_cast<std::int64_t>(suffix_bytes));
      }
      ++pulls_served_delta_;
      OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                    ": resynced node ", msg.from_node, " with ", suffix.size(),
                    " deltas (", suffix_bytes, " bytes)");
      publish_event(obs::EventKind::kResyncDelta, "delta suffix resync", suffix.size(),
                    suffix_bytes);
      return;
    }
  }
  // Chain broken (or nothing in common): broadcast a fresh full image.
  ++pulls_served_full_;
  publish_event(obs::EventKind::kResyncFull, "full resync", ckpt_seq_ + 1, 0);
  force_full_ = true;
  take_checkpoint();
}

HRESULT Ftim::propose(const Buffer& decision) {
  if (!active_) return OFTT_E_NOT_PRIMARY;
  if (!policy_->followers_execute()) {
    // Passive policies replicate through checkpoints: apply locally and
    // let the next capture carry the effect. S_FALSE tells the caller
    // nothing was shipped.
    if (on_decision_) on_decision_(decision);
    return S_FALSE;
  }
  const std::uint64_t seq = ++decision_seq_;
  if (journal_) journal_->append(store::RecordType::kDecision, seq, 0, decision);
  if (on_decision_) on_decision_(decision);
  decisions_applied_ = seq;
  ++decisions_proposed_;
  applied_at_ = process_->sim().now();
  DecisionMsg msg;
  msg.component = options_.component;
  msg.seq = seq;
  msg.decided_at = applied_at_;
  msg.payload = decision;
  const Buffer frame = msg.encode();
  for (int peer : ckpt_peers_) {
    if (ep_->send(peer, frame, /*tag=*/seq, nullptr, transport::kClassDecision)) {
      decision_bytes_sent_ += frame.size();
    }
  }
  return S_OK;
}

void Ftim::handle_decision(int src_node, const DecisionMsg& msg) {
  if (active_ || msg.component != options_.component) return;
  if (msg.seq <= decisions_applied_) return;  // session replay / dup
  if (msg.seq == decisions_applied_ + 1 && runtime_current_) {
    if (journal_) journal_->append(store::RecordType::kDecision, msg.seq, 0, msg.payload);
    if (on_decision_) on_decision_(msg.payload);
    decisions_applied_ = msg.seq;
    decision_seq_ = std::max(decision_seq_, msg.seq);
    applied_at_ = process_->sim().now();
    resync_pending_ = false;
    replay_pending_decisions();
    return;
  }
  // Out of order, or no base image yet: stash it and ask the leader for
  // a self-contained image. One outstanding nack at a time — every nack
  // costs the leader a full checkpoint.
  ++decision_gaps_;
  pending_decisions_[msg.seq] = msg.payload;
  if (!resync_pending_) {
    resync_pending_ = true;
    ep_->send(src_node,
              encode_checkpoint_nack(options_.component, latest_ ? latest_->seq : 0));
  }
}

void Ftim::handle_policy_switch(const PolicySwitchMsg& msg) {
  if (msg.component != options_.component) return;
  if (msg.to == policy_->mode()) return;
  const ReplicationMode from = policy_->mode();
  policy_ = make_policy(msg.to);
  persist_policy(msg.to);
  ++policy_switches_;
  OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                ": replication policy ", replication_mode_name(from), " -> ",
                replication_mode_name(msg.to), " (", msg.reason, ")");
  publish_event(obs::EventKind::kPolicySwitch, msg.reason,
                static_cast<std::uint64_t>(msg.to), static_cast<std::uint64_t>(from));
  if (active_) {
    // Announcements normally flow active -> passive; if one reaches an
    // active side (crossed switchover), just re-cadence the timer.
    if (options_.kind == FtimKind::kOpcClient) {
      ckpt_timer_.start(policy_->capture_period(rcfg_), [this] { take_checkpoint(); });
    }
    return;
  }
  if (policy_->apply_on_receipt() && latest_ && !runtime_current_) {
    // Entering a fold-on-receipt policy: bring the runtime up to the
    // held image now so promotion can skip the bulk restore.
    const int anomalies = restore_checkpoint(*rt_, *latest_);
    runtime_current_ = true;
    applied_at_ = process_->sim().now();
    publish_event(obs::EventKind::kCheckpointApplied, "folded held state on policy switch",
                  latest_->seq, static_cast<std::uint64_t>(anomalies));
    if (policy_->followers_execute()) {
      decisions_applied_ = std::max(decisions_applied_, latest_->decision_seq);
      decision_seq_ = std::max(decision_seq_, decisions_applied_);
    }
    replay_pending_decisions();
  }
}

HRESULT Ftim::switch_policy(ReplicationMode to, const std::string& reason) {
  if (to == policy_->mode()) return S_FALSE;
  if (to != ReplicationMode::kColdPassive && ckpt_peers_.empty()) return OFTT_E_NO_PEER;
  if (to == ReplicationMode::kSemiActive && options_.kind != FtimKind::kOpcClient) {
    return E_INVALIDARG;
  }
  if (to == ReplicationMode::kWarmPassive && !options_.track_dirty_ranges) {
    return E_INVALIDARG;
  }
  const ReplicationMode from = policy_->mode();
  policy_ = make_policy(to);
  persist_policy(to);
  ++policy_switches_;
  OFTT_LOG_INFO("oftt/ftim", process_->node().name(), "/", process_->name(),
                ": replication policy ", replication_mode_name(from), " -> ",
                replication_mode_name(to), " (", reason, ")");
  publish_event(obs::EventKind::kPolicySwitch, reason, static_cast<std::uint64_t>(to),
                static_cast<std::uint64_t>(from));
  if (active_) {
    // Announce, then pin the stream: the next frame every replica sees
    // after the announcement is a self-contained image, so both sides
    // change discipline at the same point in the checkpoint stream.
    PolicySwitchMsg msg;
    msg.component = options_.component;
    msg.to = to;
    msg.incarnation = incarnation_;
    msg.at_seq = ckpt_seq_;
    msg.decision_seq = decision_seq_;
    msg.reason = reason;
    const Buffer frame = msg.encode();
    for (int peer : ckpt_peers_) ep_->send(peer, frame);
    if (options_.kind == FtimKind::kOpcClient) {
      ckpt_timer_.start(policy_->capture_period(rcfg_), [this] { take_checkpoint(); });
      force_full_ = true;
      take_checkpoint();
    }
  } else if (policy_->apply_on_receipt() && latest_ && !runtime_current_) {
    const int anomalies = restore_checkpoint(*rt_, *latest_);
    runtime_current_ = true;
    applied_at_ = process_->sim().now();
    publish_event(obs::EventKind::kCheckpointApplied, "folded held state on policy switch",
                  latest_->seq, static_cast<std::uint64_t>(anomalies));
    if (policy_->followers_execute()) {
      decisions_applied_ = std::max(decisions_applied_, latest_->decision_seq);
      decision_seq_ = std::max(decision_seq_, decisions_applied_);
    }
    replay_pending_decisions();
  }
  return S_OK;
}

void Ftim::persist_policy(ReplicationMode mode) {
  if (!policy_journal_) return;
  Buffer payload{static_cast<std::uint8_t>(mode)};
  policy_journal_->append(store::RecordType::kPolicy, ++policy_record_seq_, 0, payload);
}

void Ftim::replay_pending_decisions() {
  while (!pending_decisions_.empty()) {
    auto it = pending_decisions_.begin();
    if (it->first <= decisions_applied_) {
      pending_decisions_.erase(it);
      continue;
    }
    if (it->first != decisions_applied_ + 1) break;  // gap: wait for resync
    if (on_decision_) on_decision_(it->second);
    decisions_applied_ = it->first;
    decision_seq_ = std::max(decision_seq_, decisions_applied_);
    applied_at_ = process_->sim().now();
    pending_decisions_.erase(it);
  }
}

void Ftim::governor_tick() {
  if (!governor_ || !ep_) return;
  const std::uint64_t ckpt_bytes = ep_->class_bytes_sent(transport::kClassCheckpoint);
  const std::uint64_t dec_bytes = ep_->class_bytes_sent(transport::kClassDecision);
  const std::uint64_t data_sent = ep_->data_sent();
  const std::uint64_t retx = ep_->retransmits();
  const double window_s =
      static_cast<double>(options_.governor.period) / 1e9;
  const double ckpt_rate =
      static_cast<double>(ckpt_bytes - gov_last_ckpt_bytes_) / window_s;
  const double dec_rate =
      static_cast<double>(dec_bytes - gov_last_decision_bytes_) / window_s;
  const std::uint64_t d_data = data_sent - gov_last_data_sent_;
  const std::uint64_t d_retx = retx - gov_last_retransmits_;
  gov_last_ckpt_bytes_ = ckpt_bytes;
  gov_last_decision_bytes_ = dec_bytes;
  gov_last_data_sent_ = data_sent;
  gov_last_retransmits_ = retx;
  gauge_ckpt_rate_.set(static_cast<std::int64_t>(ckpt_rate));
  gauge_decision_rate_.set(static_cast<std::int64_t>(dec_rate));
  const double loss = (d_data + d_retx) == 0
                          ? 0.0
                          : static_cast<double>(d_retx) / static_cast<double>(d_data + d_retx);
  if (!active_) return;  // only the primary steers the pair's policy
  const ReplicationMode want = governor_->evaluate(policy_->mode(), ckpt_rate, loss);
  if (want != policy_->mode()) switch_policy(want, "governor");
}

void Ftim::check_engine() {
  auto engine = process_->node().find_process(kEngineProcess);
  if (engine && engine->alive()) return;
  OFTT_LOG_WARN("oftt/ftim", process_->node().name(), "/", process_->name(),
                ": engine is down — restarting it");
  ctr_engine_restarts_.inc();
  publish_event(obs::EventKind::kEngineRestart, "engine dead, restarting", 0, 0);
  process_->node().restart_process(kEngineProcess);
  // The fresh engine knows nothing; re-register right away.
  register_with_engine();
}

}  // namespace oftt::core
