// ReplicationPolicy: the replication mechanism behind the engine/FTIM
// pair, extracted into a swappable strategy object.
//
// The paper hardcodes cold-passive primary/backup: periodic checkpoints
// that the backup keeps serialized until a switchover restores them in
// bulk. Component-based adaptive-FT work (Stoicescu/Fabre) treats that
// mechanism as a design dimension, and LLFT shows the other end of the
// recovery-time spectrum — leader-follower replicas that execute the
// workload and promote without any state transfer. A policy object
// decides four things:
//
//   * capture cadence  — how often the active side captures state
//   * transfer shape   — self-contained image or dirty-range delta
//   * apply discipline — does the backup fold images into its live
//                        runtime on receipt, or hold them serialized?
//   * switchover hand- — does activation need the bulk restore, and is
//     off              a stale replica even fit to take over?
//
// The FTIM owns one policy instance and consults it at every decision
// point; ColdPassivePolicy reproduces the pre-refactor behavior
// byte-for-byte. PolicyGovernor adds the adaptive layer: it watches the
// checkpoint byte rate and the transport session's observed loss and
// proposes live switches between cold and warm (never into semi-active,
// which needs the application to drive the decision log).
#pragma once

#include <cstdint>
#include <memory>

#include "core/config.h"
#include "sim/time.h"

namespace oftt::core {

struct FtimOptions;

/// Tuning the policies consult, resolved once by the FTIM from its
/// options (defaults filled in, mode-dependent fallbacks applied).
struct ReplicationConfig {
  sim::SimTime checkpoint_period = 0;
  /// Warm-passive capture cadence (resolved: never 0 once derived).
  sim::SimTime delta_stream_period = 0;
  std::uint32_t full_checkpoint_interval = 8;
  /// kFull mode with dirty tracking and an interval > 1 — the
  /// precondition for shipping deltas at all.
  bool deltas_enabled = true;
  /// Max staleness of a replica's applied state for it to be promoted
  /// without a fresh state pull; 0 = use the policy default.
  sim::SimTime promotion_staleness_bound = 0;
};

class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;

  virtual ReplicationMode mode() const = 0;
  const char* name() const { return replication_mode_name(mode()); }

  /// Where the active side is in its capture cycle when the policy is
  /// asked about the next transfer's shape.
  struct CaptureState {
    bool force_full = false;     // nack / activation / switch demanded a full
    std::uint64_t seq = 0;       // checkpoints taken so far
    std::uint32_t since_full = 0;
  };

  /// State-capture cadence for the active side's checkpoint timer.
  virtual sim::SimTime capture_period(const ReplicationConfig& c) const = 0;
  /// Transfer shape: ship the next capture as a dirty-range delta?
  virtual bool capture_as_delta(const ReplicationConfig& c, const CaptureState& s) const = 0;
  /// Backup apply discipline: fold images into the live runtime as they
  /// arrive (true) or hold them serialized until activation (false).
  virtual bool apply_on_receipt() const = 0;
  /// Switchover handoff: does activation still need the bulk restore?
  virtual bool restore_on_activate() const = 0;
  /// Semi-active only: replicas execute the workload, driven by the
  /// leader's decision log.
  virtual bool followers_execute() const = 0;
  /// Promotion-readiness rule: max staleness of a replica's applied
  /// state before succession should skip it (0 = always ready — cold
  /// backups restore in bulk, so staleness never disqualifies them).
  virtual sim::SimTime staleness_bound(const ReplicationConfig& c) const = 0;
};

/// True when a replica whose newest applied state dates from
/// `applied_at` may take over, given `evidence` — the last moment the
/// primary was provably alive. Readiness is measured against the
/// failure, not against "now": after the primary dies nobody's state
/// advances, and waiting would never make a survivor readier.
bool promotion_ready(const ReplicationPolicy& policy, const ReplicationConfig& c,
                     sim::SimTime applied_at, sim::SimTime evidence);

std::unique_ptr<ReplicationPolicy> make_policy(ReplicationMode mode);

// ---------------------------------------------------------------------
// Adaptive switching
// ---------------------------------------------------------------------

struct GovernorConfig {
  bool enabled = false;
  /// Sampling window; each evaluation sees the rates over one period.
  sim::SimTime period = sim::seconds(1);
  /// Observed loss (retransmits / data frames) above which the unit
  /// degrades to cold-passive: frequent small deltas amplify
  /// retransmission badly, coarse periodic images ride it out.
  double loss_rate_high = 0.05;
  /// Checkpoint byte rate below which warm streaming is affordable.
  std::uint64_t warm_bytes_per_s = 256 * 1024;
  /// Consecutive over/under-threshold windows before acting (hysteresis
  /// — one noisy window must not flap the policy).
  int hysteresis_windows = 2;
};

/// Pure decision logic: feed it one sample per window, it answers what
/// mode the unit should be in. Never proposes semi-active — followers
/// only execute when the application participates in the decision log,
/// which no metric can detect.
class PolicyGovernor {
 public:
  explicit PolicyGovernor(GovernorConfig config) : config_(config) {}

  ReplicationMode evaluate(ReplicationMode current, double ckpt_bytes_per_s,
                           double loss_rate);

  const GovernorConfig& config() const { return config_; }

 private:
  GovernorConfig config_;
  int lossy_windows_ = 0;
  int calm_windows_ = 0;
  int heavy_windows_ = 0;
};

/// Reject inconsistent replication knobs with a descriptive
/// std::invalid_argument (delta interval without dirty tracking,
/// warm-passive without dirty tracking, semi-active without a peer,
/// nonsense periods). Called by the Ftim constructor; tests call it
/// directly.
void validate_ftim_options(const FtimOptions& options);

}  // namespace oftt::core
