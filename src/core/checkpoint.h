// CheckpointImage: what one FTIM ships to its peer.
//
// Full mode is the "memory walkthrough": every MemorySpace region plus
// the contexts of every *discoverable* task (statically created threads
// via GetThreadContext, dynamically created ones only if the FTIM's IAT
// hook saw them — §3.1). Selective mode carries only the cells the
// application designated with OFTTSelSave (refs [10,11]: user-directed
// checkpointing cuts the cost).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "nt/runtime.h"
#include "sim/time.h"

namespace oftt::core {

enum class CheckpointMode : std::uint8_t {
  kFull = 0,
  kSelective = 1,
  /// Only what changed since checkpoint `base_seq`: regions that were
  /// wholly rewritten travel as region blobs, precise dirty byte ranges
  /// travel as cells. Applies only on top of an image whose seq ==
  /// base_seq (same incarnation); otherwise the receiver must demand a
  /// full resync.
  kDelta = 2,
};

struct SelectiveCell {
  std::string region;
  std::uint32_t offset = 0;
  Buffer bytes;
};

struct CheckpointImage {
  std::uint64_t seq = 0;
  /// For kDelta: the seq this delta applies on top of. 0 otherwise.
  std::uint64_t base_seq = 0;
  /// Semi-active: the newest decision-log seq already folded into this
  /// image. A follower that has applied decisions past this watermark
  /// must not let the image stomp its fresher runtime. 0 elsewhere.
  std::uint64_t decision_seq = 0;
  std::uint32_t incarnation = 0;
  CheckpointMode mode = CheckpointMode::kFull;
  sim::SimTime taken_at = 0;
  std::map<std::string, Buffer> regions;           // full mode
  std::vector<SelectiveCell> cells;                // selective mode
  std::map<std::string, Buffer> task_contexts;     // serialized TaskContext by task name
  std::uint64_t checksum = 0;                      // FNV over the payload

  std::size_t payload_bytes() const;

  Buffer marshal() const;
  /// Returns false on truncation or checksum mismatch.
  static bool unmarshal(const Buffer& buf, CheckpointImage& out);
};

/// Registered selective-save designation (OFTTSelSave).
struct CellSpec {
  std::string region;
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
};

/// Capture a checkpoint from a process's NT runtime.
CheckpointImage capture_checkpoint(nt::NtRuntime& rt, CheckpointMode mode,
                                   const std::vector<CellSpec>& cells, std::uint64_t seq,
                                   std::uint32_t incarnation,
                                   const std::vector<nt::Task*>& discoverable_tasks);

/// Capture a delta checkpoint: regions whose dirty tracking collapsed
/// to "everything" ship as whole-region blobs, precise dirty ranges
/// ship as cells, task contexts always ship (they are tiny and change
/// every quantum). Does NOT clear dirty state — the caller clears it
/// once the delta is durable.
CheckpointImage capture_delta_checkpoint(nt::NtRuntime& rt, std::uint64_t seq,
                                         std::uint64_t base_seq, std::uint32_t incarnation,
                                         const std::vector<nt::Task*>& discoverable_tasks);

enum class DeltaApply : std::uint8_t {
  kApplied = 0,
  /// The delta does not chain on this base (wrong mode, stale or future
  /// base_seq, incarnation mismatch). The base was left untouched; the
  /// receiver must demand a full resync.
  kNeedFull = 1,
};

struct DeltaApplyResult {
  DeltaApply status = DeltaApply::kApplied;
  /// Cells that missed their region or overran it (kApplied only).
  int anomalies = 0;
  bool applied() const { return status == DeltaApply::kApplied; }
};

/// Merge a delta into the base image it chains on. The chain is
/// verified here — delta.mode == kDelta, delta.base_seq == base.seq,
/// matching incarnation — and a mismatch returns kNeedFull with the
/// base untouched instead of silently merging stale bytes. On success
/// the base advances to the delta's seq.
DeltaApplyResult apply_delta(CheckpointImage& base, const CheckpointImage& delta);

/// Apply an image to a process's NT runtime (the backup side of a
/// switchover). Unknown regions are created; size mismatches are
/// clamped and counted in the return value (0 = clean restore).
int restore_checkpoint(nt::NtRuntime& rt, const CheckpointImage& image);

}  // namespace oftt::core
