// CheckpointImage: what one FTIM ships to its peer.
//
// Full mode is the "memory walkthrough": every MemorySpace region plus
// the contexts of every *discoverable* task (statically created threads
// via GetThreadContext, dynamically created ones only if the FTIM's IAT
// hook saw them — §3.1). Selective mode carries only the cells the
// application designated with OFTTSelSave (refs [10,11]: user-directed
// checkpointing cuts the cost).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "nt/runtime.h"
#include "sim/time.h"

namespace oftt::core {

enum class CheckpointMode : std::uint8_t { kFull = 0, kSelective = 1 };

struct SelectiveCell {
  std::string region;
  std::uint32_t offset = 0;
  Buffer bytes;
};

struct CheckpointImage {
  std::uint64_t seq = 0;
  std::uint32_t incarnation = 0;
  CheckpointMode mode = CheckpointMode::kFull;
  sim::SimTime taken_at = 0;
  std::map<std::string, Buffer> regions;           // full mode
  std::vector<SelectiveCell> cells;                // selective mode
  std::map<std::string, Buffer> task_contexts;     // serialized TaskContext by task name
  std::uint64_t checksum = 0;                      // FNV over the payload

  std::size_t payload_bytes() const;

  Buffer marshal() const;
  /// Returns false on truncation or checksum mismatch.
  static bool unmarshal(const Buffer& buf, CheckpointImage& out);
};

/// Registered selective-save designation (OFTTSelSave).
struct CellSpec {
  std::string region;
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
};

/// Capture a checkpoint from a process's NT runtime.
CheckpointImage capture_checkpoint(nt::NtRuntime& rt, CheckpointMode mode,
                                   const std::vector<CellSpec>& cells, std::uint64_t seq,
                                   std::uint32_t incarnation,
                                   const std::vector<nt::Task*>& discoverable_tasks);

/// Apply an image to a process's NT runtime (the backup side of a
/// switchover). Unknown regions are created; size mismatches are
/// clamped and counted in the return value (0 = clean restore).
int restore_checkpoint(nt::NtRuntime& rt, const CheckpointImage& image);

}  // namespace oftt::core
