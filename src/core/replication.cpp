#include "core/replication.h"

#include <algorithm>
#include <stdexcept>

#include "common/strings.h"
#include "core/ftim.h"

namespace oftt::core {
namespace {

// The paper's scheme, verbatim: periodic captures at the configured
// period, every Nth self-contained, backup holds the serialized image
// and restores it in bulk when activated. Any change to these answers
// shows up as a changed event history in the determinism tests.
class ColdPassivePolicy final : public ReplicationPolicy {
 public:
  ReplicationMode mode() const override { return ReplicationMode::kColdPassive; }
  sim::SimTime capture_period(const ReplicationConfig& c) const override {
    return c.checkpoint_period;
  }
  bool capture_as_delta(const ReplicationConfig& c, const CaptureState& s) const override {
    if (!c.deltas_enabled || s.force_full || s.seq == 0) return false;
    return s.since_full + 1 < c.full_checkpoint_interval;
  }
  bool apply_on_receipt() const override { return false; }
  bool restore_on_activate() const override { return true; }
  bool followers_execute() const override { return false; }
  sim::SimTime staleness_bound(const ReplicationConfig&) const override {
    // A cold backup restores the whole image at activation; a stale one
    // is merely further behind, never unfit.
    return 0;
  }
};

// Continuous dirty-range streaming: captures run at the (much faster)
// delta cadence and the backup folds each one into its live runtime on
// receipt, so its image is near-current and activation skips the bulk
// restore. The Nth-full rhythm is kept — a periodic self-contained
// image is what lets the journal compact and a lost delta resync.
class WarmPassivePolicy final : public ReplicationPolicy {
 public:
  ReplicationMode mode() const override { return ReplicationMode::kWarmPassive; }
  sim::SimTime capture_period(const ReplicationConfig& c) const override {
    return c.delta_stream_period;
  }
  bool capture_as_delta(const ReplicationConfig& c, const CaptureState& s) const override {
    if (!c.deltas_enabled || s.force_full || s.seq == 0) return false;
    return s.since_full + 1 < c.full_checkpoint_interval;
  }
  bool apply_on_receipt() const override { return true; }
  bool restore_on_activate() const override { return false; }
  bool followers_execute() const override { return false; }
  sim::SimTime staleness_bound(const ReplicationConfig& c) const override {
    if (c.promotion_staleness_bound > 0) return c.promotion_staleness_bound;
    return 8 * c.delta_stream_period;
  }
};

// Leader-follower: followers execute the workload from the leader's
// decision log, so their state is as fresh as the last applied decision
// and switchover is promotion-only. Checkpoints degrade to a sparse
// safety net (bootstrap for joining followers, resync after a gap) —
// always self-contained, at the slow cadence.
class SemiActivePolicy final : public ReplicationPolicy {
 public:
  ReplicationMode mode() const override { return ReplicationMode::kSemiActive; }
  sim::SimTime capture_period(const ReplicationConfig& c) const override {
    return std::max<sim::SimTime>(
        c.checkpoint_period,
        c.checkpoint_period * static_cast<sim::SimTime>(c.full_checkpoint_interval));
  }
  bool capture_as_delta(const ReplicationConfig&, const CaptureState&) const override {
    return false;
  }
  bool apply_on_receipt() const override { return true; }
  bool restore_on_activate() const override { return false; }
  bool followers_execute() const override { return true; }
  sim::SimTime staleness_bound(const ReplicationConfig& c) const override {
    if (c.promotion_staleness_bound > 0) return c.promotion_staleness_bound;
    return 8 * c.checkpoint_period;
  }
};

}  // namespace

bool promotion_ready(const ReplicationPolicy& policy, const ReplicationConfig& c,
                     sim::SimTime applied_at, sim::SimTime evidence) {
  sim::SimTime bound = policy.staleness_bound(c);
  if (bound <= 0) return true;
  return applied_at + bound >= evidence;
}

std::unique_ptr<ReplicationPolicy> make_policy(ReplicationMode mode) {
  switch (mode) {
    case ReplicationMode::kColdPassive: return std::make_unique<ColdPassivePolicy>();
    case ReplicationMode::kWarmPassive: return std::make_unique<WarmPassivePolicy>();
    case ReplicationMode::kSemiActive: return std::make_unique<SemiActivePolicy>();
  }
  return std::make_unique<ColdPassivePolicy>();
}

ReplicationMode PolicyGovernor::evaluate(ReplicationMode current, double ckpt_bytes_per_s,
                                         double loss_rate) {
  // Semi-active is the application's choice (it must drive the decision
  // log); the governor only arbitrates the passive spectrum.
  if (current == ReplicationMode::kSemiActive) return current;

  if (loss_rate > config_.loss_rate_high) {
    ++lossy_windows_;
    calm_windows_ = 0;
  } else {
    lossy_windows_ = 0;
    ++calm_windows_;
  }
  if (ckpt_bytes_per_s > static_cast<double>(config_.warm_bytes_per_s)) {
    ++heavy_windows_;
  } else {
    heavy_windows_ = 0;
  }

  if (current == ReplicationMode::kWarmPassive) {
    // Degrade: sustained loss amplifies a chatty delta stream's
    // retransmissions, and a sustained heavy byte rate means frequent
    // captures cost more than the switchover time they buy.
    if (lossy_windows_ >= config_.hysteresis_windows ||
        heavy_windows_ >= config_.hysteresis_windows) {
      return ReplicationMode::kColdPassive;
    }
    return current;
  }
  // Upgrade: calm network and an affordable byte rate for long enough.
  if (calm_windows_ >= config_.hysteresis_windows &&
      heavy_windows_ == 0) {
    return ReplicationMode::kWarmPassive;
  }
  return current;
}

void validate_ftim_options(const FtimOptions& o) {
  const bool has_peer = o.peer_node >= 0 || !o.peer_nodes.empty();
  if (o.checkpoint_period <= 0) {
    throw std::invalid_argument(
        cat("ftim: checkpoint_period must be > 0 (got ", o.checkpoint_period, " ns)"));
  }
  if (o.heartbeat_period <= 0) {
    throw std::invalid_argument(
        cat("ftim: heartbeat_period must be > 0 (got ", o.heartbeat_period, " ns)"));
  }
  if (o.full_checkpoint_interval == 0) {
    throw std::invalid_argument(
        "ftim: full_checkpoint_interval must be >= 1 (1 disables deltas)");
  }
  if (o.checkpoint_mode == CheckpointMode::kFull && o.full_checkpoint_interval > 1 &&
      !o.track_dirty_ranges) {
    throw std::invalid_argument(
        cat("ftim: full_checkpoint_interval ", o.full_checkpoint_interval,
            " asks for delta checkpoints but track_dirty_ranges is off — deltas need "
            "dirty tracking (set the interval to 1 or re-enable tracking)"));
  }
  if (o.delta_stream_period < 0) {
    throw std::invalid_argument(
        cat("ftim: delta_stream_period must be >= 0 (got ", o.delta_stream_period, " ns)"));
  }
  if (o.delta_stream_period > 0 && o.replication != ReplicationMode::kWarmPassive) {
    throw std::invalid_argument(
        cat("ftim: delta_stream_period is a warm-passive knob, but replication is ",
            replication_mode_name(o.replication)));
  }
  if (o.replication == ReplicationMode::kWarmPassive && !o.track_dirty_ranges) {
    throw std::invalid_argument(
        "ftim: warm-passive streams dirty-range deltas and cannot run with "
        "track_dirty_ranges off");
  }
  if (o.replication != ReplicationMode::kColdPassive && !has_peer) {
    throw std::invalid_argument(
        cat("ftim: ", replication_mode_name(o.replication),
            " replication needs at least one replication peer (N >= 2); configure "
            "peer_node or peer_nodes"));
  }
  if (o.replication == ReplicationMode::kSemiActive && o.kind != FtimKind::kOpcClient) {
    throw std::invalid_argument(
        "ftim: semi-active replication needs a checkpointable client component "
        "(kind = kOpcClient)");
  }
  if (o.promotion_staleness_bound < 0) {
    throw std::invalid_argument(
        cat("ftim: promotion_staleness_bound must be >= 0 (got ",
            o.promotion_staleness_bound, " ns)"));
  }
  if (o.governor.enabled) {
    if (o.governor.period <= 0) {
      throw std::invalid_argument(
          cat("ftim: governor.period must be > 0 (got ", o.governor.period, " ns)"));
    }
    if (o.governor.hysteresis_windows < 1) {
      throw std::invalid_argument(
          cat("ftim: governor.hysteresis_windows must be >= 1 (got ",
              o.governor.hysteresis_windows, ")"));
    }
    if (o.governor.loss_rate_high < 0.0 || o.governor.loss_rate_high > 1.0) {
      throw std::invalid_argument(
          cat("ftim: governor.loss_rate_high must be within [0, 1] (got ",
              o.governor.loss_rate_high, ")"));
    }
  }
}

}  // namespace oftt::core
