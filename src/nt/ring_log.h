// RingLog<T>: a fixed-capacity ring buffer of trivially-copyable records
// laid out inside a MemorySpace region — so it is captured by the FTIM
// checkpoint walkthrough and survives switchover bit-exactly. The §4
// call-track application "records the past and present states of the
// system"; this is the container for exactly that kind of history.
//
// Layout inside the region, starting at `base`:
//   u64 head (next write index, monotonically increasing)
//   u64 capacity
//   T[capacity]
#pragma once

#include <cassert>
#include <cstring>
#include <type_traits>

#include "nt/memory.h"

namespace oftt::nt {

template <typename T>
class RingLog {
  static_assert(std::is_trivially_copyable_v<T>,
                "RingLog records live in raw checkpointable memory");

 public:
  RingLog() = default;

  /// Attach to (and if virgin, initialize) a ring at `base` in `region`.
  /// The region must have room for bytes_required(capacity).
  RingLog(Region* region, std::size_t base, std::uint64_t capacity)
      : region_(region), base_(base) {
    assert(base_ + bytes_required(capacity) <= region_->size());
    // Idempotent init: a restored checkpoint image carries its own
    // header; only stamp a fresh (zero-capacity) ring.
    if (stored_capacity() == 0) {
      set_head(0);
      region_->write<std::uint64_t>(base_ + 8, capacity);
    }
    assert(stored_capacity() == capacity);
  }

  static constexpr std::size_t bytes_required(std::uint64_t capacity) {
    return 16 + sizeof(T) * capacity;
  }

  std::uint64_t capacity() const { return stored_capacity(); }
  /// Total records ever appended (monotone across checkpoints).
  std::uint64_t total_appended() const { return head(); }
  std::uint64_t size() const { return std::min(head(), stored_capacity()); }
  bool empty() const { return head() == 0; }

  void append(const T& record) {
    std::uint64_t h = head();
    std::size_t slot = static_cast<std::size_t>(h % stored_capacity());
    region_->write<T>(slot_offset(slot), record);
    set_head(h + 1);
  }

  /// i = 0 is the oldest retained record, i = size()-1 the newest.
  T at(std::uint64_t i) const {
    assert(i < size());
    std::uint64_t h = head();
    std::uint64_t cap = stored_capacity();
    std::uint64_t first = h > cap ? h - cap : 0;
    std::size_t slot = static_cast<std::size_t>((first + i) % cap);
    return region_->read<T>(slot_offset(slot));
  }

  T newest() const {
    assert(!empty());
    return at(size() - 1);
  }

  void clear() { set_head(0); }

 private:
  std::uint64_t head() const { return region_->read<std::uint64_t>(base_); }
  void set_head(std::uint64_t h) { region_->write<std::uint64_t>(base_, h); }
  std::uint64_t stored_capacity() const { return region_->read<std::uint64_t>(base_ + 8); }
  std::size_t slot_offset(std::size_t slot) const { return base_ + 16 + slot * sizeof(T); }

  Region* region_ = nullptr;
  std::size_t base_ = 0;
};

}  // namespace oftt::nt
