#include "nt/runtime.h"

#include "common/logging.h"
#include "common/strings.h"
#include "sim/node.h"

namespace oftt::nt {

NtRuntime::NtRuntime(sim::Process& process) : process_(&process) {
  // The pristine IAT slot points at the real kernel service.
  create_thread_slot_ = [this](const std::string& name, std::uint64_t start_address) -> Task& {
    return make_task(name, start_address, /*statically_created=*/false);
  };
}

Task& NtRuntime::make_task(const std::string& name, std::uint64_t start_address,
                           bool statically_created) {
  sim::Strand& strand = process_->create_strand(name);
  tasks_.push_back(
      std::make_unique<Task>(strand, name, next_tid_++, start_address, statically_created));
  OFTT_LOG_TRACE("nt", process_->node().name(), "/", process_->name(), ": thread '", name,
                 "' tid=", tasks_.back()->tid(), statically_created ? " (static)" : " (dynamic)");
  return *tasks_.back();
}

Task& NtRuntime::create_thread_static(const std::string& name, std::uint64_t start_address) {
  return make_task(name, start_address, /*statically_created=*/true);
}

Task& NtRuntime::CreateThread(const std::string& name, std::uint64_t start_address) {
  return create_thread_slot_(name, start_address);
}

NtRuntime::CreateThreadFn NtRuntime::hook_create_thread(CreateThreadFn wrapper) {
  auto original = std::move(create_thread_slot_);
  create_thread_slot_ = std::move(wrapper);
  hooked_ = true;
  return original;
}

std::vector<std::uint32_t> NtRuntime::enumerate_thread_ids() const {
  std::vector<std::uint32_t> ids;
  for (const auto& t : tasks_) {
    if (t->alive()) ids.push_back(t->tid());
  }
  return ids;
}

Task* NtRuntime::open_thread(std::uint32_t tid) {
  for (auto& t : tasks_) {
    if (t->tid() == tid && t->alive()) {
      // Documented APIs only yield a usable handle for threads the
      // loader knows about (paper §3.1: dynamically created threads'
      // handles "can not be accessed directly through the standard
      // Win32 APIs").
      return t->statically_created() ? t.get() : nullptr;
    }
  }
  return nullptr;
}

std::uint64_t NtRuntime::perf_counter_start_address(std::uint32_t tid) const {
  for (const auto& t : tasks_) {
    if (t->tid() == tid) {
      return t->statically_created() ? t->start_address() : kNtdllThreadStartStub;
    }
  }
  return 0;
}

std::vector<Task*> NtRuntime::all_tasks() {
  std::vector<Task*> out;
  for (auto& t : tasks_) {
    if (t->alive()) out.push_back(t.get());
  }
  return out;
}

Task* NtRuntime::find_task_by_name(const std::string& name) {
  for (auto& t : tasks_) {
    if (t->name() == name && t->alive()) return t.get();
  }
  return nullptr;
}

NtEvent& NtRuntime::create_event(const std::string& name) {
  auto it = events_.find(name);
  if (it == events_.end()) {
    it = events_.emplace(name, std::make_unique<NtEvent>(name)).first;
  }
  return *it->second;
}

NtEvent* NtRuntime::find_event(const std::string& name) {
  auto it = events_.find(name);
  return it == events_.end() ? nullptr : it->second.get();
}

}  // namespace oftt::nt
