// NtRuntime: the per-process Win32-like API surface.
//
// Reproduces the specific NT behaviours the paper's implementation
// experience (§3.1) turns on:
//   * threads created at startup ("statically generated kernel objects")
//     are enumerable and their context is capturable via documented APIs;
//   * threads created dynamically via CreateThread are NOT reachable via
//     documented APIs — OpenThread on them fails, and the performance
//     counter reports an NTDLL stub as their start address ("just
//     misleading");
//   * hooking the Import Address Table entry for CreateThread (what the
//     FTIM does) is the only way to learn their handles.
//
// Also provides NT events and waitable timers, which back the OFTT
// reliable-watchdog objects.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "nt/memory.h"
#include "nt/task.h"
#include "sim/process.h"
#include "sim/timer.h"

namespace oftt::nt {

/// The documented start address the performance monitor reports for a
/// dynamically created thread: a routine inside NTDLL.DLL, not the real
/// entry point (paper ref [12]).
constexpr std::uint64_t kNtdllThreadStartStub = 0x77f0'0000'0000'1a2bull;

/// Manual-reset event (SetEvent/ResetEvent + async waiters).
class NtEvent {
 public:
  explicit NtEvent(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  bool is_set() const { return set_; }

  void set() {
    set_ = true;
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (auto& w : waiters) w();
  }
  void reset() { set_ = false; }

  /// Invoke `fn` when the event becomes set (immediately if already set).
  void wait_async(std::function<void()> fn) {
    if (set_) {
      fn();
    } else {
      waiters_.push_back(std::move(fn));
    }
  }

 private:
  std::string name_;
  bool set_ = false;
  std::vector<std::function<void()>> waiters_;
};

/// Waitable timer: one-shot or periodic callback on a strand.
class WaitableTimer {
 public:
  explicit WaitableTimer(sim::Strand& strand) : strand_(&strand) {}

  void set(sim::SimTime due, sim::SimTime period, std::function<void()> fn) {
    cancel();
    fn_ = std::move(fn);
    period_ = period;
    const std::uint64_t gen = generation_;
    strand_->schedule_after(due, [this, gen] { fire(gen); });
    armed_ = true;
  }

  void cancel() {
    ++generation_;
    armed_ = false;
  }
  bool armed() const { return armed_; }

 private:
  void fire(std::uint64_t gen) {
    if (gen != generation_) return;
    if (period_ > 0) {
      strand_->schedule_after(period_, [this, gen] { fire(gen); });
    } else {
      armed_ = false;
    }
    fn_();
  }

  sim::Strand* strand_;
  std::function<void()> fn_;
  sim::SimTime period_ = 0;
  bool armed_ = false;
  std::uint64_t generation_ = 0;
};

class NtRuntime {
 public:
  using CreateThreadFn =
      std::function<Task&(const std::string& name, std::uint64_t start_address)>;

  explicit NtRuntime(sim::Process& process);

  sim::Process& process() { return *process_; }
  MemorySpace& memory() { return memory_; }

  /// Attach (or get) the runtime for a process.
  static NtRuntime& of(sim::Process& process) { return process.attachment<NtRuntime>(process); }

  // --- thread creation ---

  /// Threads the loader creates at image start; always discoverable.
  Task& create_thread_static(const std::string& name, std::uint64_t start_address);

  /// The Win32 CreateThread import: dispatches through the IAT slot, so
  /// an installed hook sees the call. Without a hook the new thread is
  /// NOT discoverable through documented APIs.
  Task& CreateThread(const std::string& name, std::uint64_t start_address);

  /// IAT interception: replace the CreateThread slot; returns the
  /// original (the hook must chain to it to actually create the thread).
  CreateThreadFn hook_create_thread(CreateThreadFn wrapper);
  bool create_thread_hooked() const { return hooked_; }

  // --- documented enumeration APIs ---

  /// All live thread ids (the kernel knows them all — like toolhelp).
  std::vector<std::uint32_t> enumerate_thread_ids() const;

  /// OpenThread analogue: returns the Task only when its handle is
  /// obtainable through documented means (statically created threads).
  Task* open_thread(std::uint32_t tid);

  /// Performance-counter view of a thread's start address — the NTDLL
  /// stub for dynamic threads (misleading, per the paper).
  std::uint64_t perf_counter_start_address(std::uint32_t tid) const;

  /// Kernel-internal view (not available to applications; used by tests
  /// to assert what checkpoints *should* have contained).
  std::vector<Task*> all_tasks();
  Task* find_task_by_name(const std::string& name);

  // --- kernel objects ---
  NtEvent& create_event(const std::string& name);
  NtEvent* find_event(const std::string& name);
  std::unique_ptr<WaitableTimer> create_waitable_timer(sim::Strand& strand) {
    return std::make_unique<WaitableTimer>(strand);
  }

 private:
  Task& make_task(const std::string& name, std::uint64_t start_address, bool statically_created);

  sim::Process* process_;
  MemorySpace memory_;
  std::uint32_t next_tid_ = 0x100;
  std::vector<std::unique_ptr<Task>> tasks_;
  CreateThreadFn create_thread_slot_;  // the IAT entry
  bool hooked_ = false;
  std::map<std::string, std::unique_ptr<NtEvent>> events_;
};

}  // namespace oftt::nt
