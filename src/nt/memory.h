// MemorySpace: the checkpointable address space of a simulated process.
//
// The paper's FTIM checkpoints an application by "a memory walkthrough
// [that] will extract the relevant data such as stack, global
// variables". Here the walkable memory is explicit: applications
// allocate named Regions (their globals / heap / stacks live inside
// region bytes), and the checkpointer snapshots or restores them
// wholesale. `OFTTSelSave` marks sub-ranges (cells) for selective
// checkpointing.
#pragma once

#include <cassert>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace oftt::nt {

class Region {
 public:
  Region(std::string name, std::size_t size) : name_(std::move(name)), bytes_(size, 0) {}

  const std::string& name() const { return name_; }
  std::size_t size() const { return bytes_.size(); }
  std::uint8_t* data() { return bytes_.data(); }
  const std::uint8_t* data() const { return bytes_.data(); }

  Buffer snapshot() const { return bytes_; }
  void restore(const Buffer& image) {
    assert(image.size() == bytes_.size());
    bytes_ = image;
  }

  /// Read/write a POD at an offset (bounds-checked).
  template <typename T>
  T read(std::size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(offset + sizeof(T) <= bytes_.size());
    T v;
    std::memcpy(&v, bytes_.data() + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void write(std::size_t offset, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(offset + sizeof(T) <= bytes_.size());
    std::memcpy(bytes_.data() + offset, &v, sizeof(T));
  }

 private:
  std::string name_;
  Buffer bytes_;
};

/// A typed window onto a region slice — the ergonomic way applications
/// keep checkpointable variables.
template <typename T>
class Cell {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  Cell() = default;
  Cell(Region* region, std::size_t offset) : region_(region), offset_(offset) {}

  T get() const { return region_->read<T>(offset_); }
  void set(const T& v) { region_->write<T>(offset_, v); }
  Region* region() const { return region_; }
  std::size_t offset() const { return offset_; }
  std::size_t size() const { return sizeof(T); }

 private:
  Region* region_ = nullptr;
  std::size_t offset_ = 0;
};

class MemorySpace {
 public:
  /// Allocate (or return the existing) named region.
  Region& alloc(const std::string& name, std::size_t size) {
    auto it = regions_.find(name);
    if (it != regions_.end()) {
      assert(it->second->size() == size);
      return *it->second;
    }
    auto r = std::make_unique<Region>(name, size);
    Region& ref = *r;
    regions_.emplace(name, std::move(r));
    return ref;
  }

  Region* find(const std::string& name) {
    auto it = regions_.find(name);
    return it == regions_.end() ? nullptr : it->second.get();
  }

  /// Bump-allocate a typed cell inside a region.
  template <typename T>
  Cell<T> alloc_cell(Region& region, std::size_t offset) {
    assert(offset + sizeof(T) <= region.size());
    return Cell<T>(&region, offset);
  }

  const std::map<std::string, std::unique_ptr<Region>>& regions() const { return regions_; }

  std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& [_, r] : regions_) n += r->size();
    return n;
  }

 private:
  std::map<std::string, std::unique_ptr<Region>> regions_;
};

}  // namespace oftt::nt
