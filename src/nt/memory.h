// MemorySpace: the checkpointable address space of a simulated process.
//
// The paper's FTIM checkpoints an application by "a memory walkthrough
// [that] will extract the relevant data such as stack, global
// variables". Here the walkable memory is explicit: applications
// allocate named Regions (their globals / heap / stacks live inside
// region bytes), and the checkpointer snapshots or restores them
// wholesale. `OFTTSelSave` marks sub-ranges (cells) for selective
// checkpointing.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace oftt::nt {

class Region {
 public:
  /// A half-open dirty byte range [begin, end).
  struct Range {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// A freshly allocated region is wholly dirty: it did not exist at
  /// the last checkpoint, so a delta must carry all of it.
  Region(std::string name, std::size_t size)
      : name_(std::move(name)), bytes_(size, 0), dirty_all_(true) {}

  const std::string& name() const { return name_; }
  std::size_t size() const { return bytes_.size(); }
  /// Mutable access marks the whole region dirty: the caller holds a
  /// raw pointer the tracker cannot see through, so the only safe
  /// answer is "anything may have changed".
  std::uint8_t* data() {
    dirty_all_ = true;
    return bytes_.data();
  }
  const std::uint8_t* data() const { return bytes_.data(); }

  Buffer snapshot() const { return bytes_; }
  void restore(const Buffer& image) {
    assert(image.size() == bytes_.size());
    bytes_ = image;
    dirty_all_ = true;
  }

  /// Read/write a POD at an offset (bounds-checked).
  template <typename T>
  T read(std::size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(offset + sizeof(T) <= bytes_.size());
    T v;
    std::memcpy(&v, bytes_.data() + offset, sizeof(T));
    return v;
  }
  template <typename T>
  void write(std::size_t offset, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(offset + sizeof(T) <= bytes_.size());
    std::memcpy(bytes_.data() + offset, &v, sizeof(T));
    mark_dirty(offset, sizeof(T));
  }

  /// Explicit dirty designation for code that wrote through a cached
  /// data() pointer but knows exactly what it touched.
  void mark_dirty(std::size_t offset, std::size_t n) {
    if (dirty_all_ || n == 0) return;
    insert_range(offset, offset + n);
  }

  // --- dirty-region tracking (delta checkpoints) ---
  bool dirty() const { return dirty_all_ || !dirty_ranges_.empty(); }
  bool dirty_all() const { return dirty_all_; }
  /// Coalesced dirty byte ranges; meaningless while dirty_all().
  const std::vector<Range>& dirty_ranges() const { return dirty_ranges_; }
  /// Bytes a delta of this region would carry (whole size if dirty_all).
  std::size_t dirty_bytes() const {
    if (dirty_all_) return bytes_.size();
    std::size_t n = 0;
    for (const Range& r : dirty_ranges_) n += r.end - r.begin;
    return n;
  }
  /// Checkpoint taken: the region is clean relative to it.
  void clear_dirty() {
    dirty_all_ = false;
    dirty_ranges_.clear();
  }

  /// Raise (or lower) the dirty-range bookkeeping cap. The default of
  /// 64 suits small scattered-write regions; sharded stores that mark
  /// many precise slot-sized ranges per checkpoint interval (e.g. the
  /// OPC TagStore) raise it so a few hundred scattered writes do not
  /// collapse into a full-region delta.
  void set_range_limit(std::size_t max_ranges) { max_ranges_ = max_ranges; }
  std::size_t range_limit() const { return max_ranges_; }

 private:
  /// Insert [begin, end) into the sorted range set, merging neighbours.
  /// Past max_ranges_ the bookkeeping would cost more than it saves, so
  /// the tracker degrades to dirty_all (a full-region delta).
  void insert_range(std::size_t begin, std::size_t end) {
    std::size_t i = 0;
    while (i < dirty_ranges_.size() && dirty_ranges_[i].end < begin) ++i;
    std::size_t j = i;
    while (j < dirty_ranges_.size() && dirty_ranges_[j].begin <= end) {
      begin = std::min(begin, dirty_ranges_[j].begin);
      end = std::max(end, dirty_ranges_[j].end);
      ++j;
    }
    dirty_ranges_.erase(dirty_ranges_.begin() + static_cast<std::ptrdiff_t>(i),
                        dirty_ranges_.begin() + static_cast<std::ptrdiff_t>(j));
    dirty_ranges_.insert(dirty_ranges_.begin() + static_cast<std::ptrdiff_t>(i),
                         Range{begin, end});
    if (dirty_ranges_.size() > max_ranges_) {
      dirty_ranges_.clear();
      dirty_all_ = true;
    }
  }

  std::string name_;
  Buffer bytes_;
  bool dirty_all_ = true;
  std::vector<Range> dirty_ranges_;
  std::size_t max_ranges_ = 64;
};

/// A typed window onto a region slice — the ergonomic way applications
/// keep checkpointable variables.
template <typename T>
class Cell {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  Cell() = default;
  Cell(Region* region, std::size_t offset) : region_(region), offset_(offset) {}

  T get() const { return region_->read<T>(offset_); }
  void set(const T& v) { region_->write<T>(offset_, v); }
  Region* region() const { return region_; }
  std::size_t offset() const { return offset_; }
  std::size_t size() const { return sizeof(T); }

 private:
  Region* region_ = nullptr;
  std::size_t offset_ = 0;
};

class MemorySpace {
 public:
  /// Allocate (or return the existing) named region.
  Region& alloc(const std::string& name, std::size_t size) {
    auto it = regions_.find(name);
    if (it != regions_.end()) {
      assert(it->second->size() == size);
      return *it->second;
    }
    auto r = std::make_unique<Region>(name, size);
    Region& ref = *r;
    regions_.emplace(name, std::move(r));
    return ref;
  }

  Region* find(const std::string& name) {
    auto it = regions_.find(name);
    return it == regions_.end() ? nullptr : it->second.get();
  }

  /// Bump-allocate a typed cell inside a region.
  template <typename T>
  Cell<T> alloc_cell(Region& region, std::size_t offset) {
    assert(offset + sizeof(T) <= region.size());
    return Cell<T>(&region, offset);
  }

  const std::map<std::string, std::unique_ptr<Region>>& regions() const { return regions_; }

  std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& [_, r] : regions_) n += r->size();
    return n;
  }

  /// Checkpoint boundary: every region becomes clean relative to the
  /// image just captured.
  void clear_all_dirty() {
    for (auto& [_, r] : regions_) r->clear_dirty();
  }

 private:
  std::map<std::string, std::unique_ptr<Region>> regions_;
};

}  // namespace oftt::nt
