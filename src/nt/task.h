// Task: a simulated NT thread. Wraps a sim::Strand (the schedulable
// context) and carries a capturable Context — the analogue of what
// Win32 GetThreadContext() plus a stack walk yields.
//
// Context capture works through provider/restorer callbacks the task's
// owner registers: the provider serializes whatever execution state the
// task holds outside MemorySpace regions; the restorer re-applies it on
// the backup after switchover.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "sim/process.h"

namespace oftt::nt {

/// The register-file part of a thread context. start_address mirrors the
/// Win32 thread start routine; the paper's §3.1 complaint is that for
/// dynamically created threads this is not recoverable via documented
/// APIs (the performance counter shows an NTDLL stub instead).
struct TaskContext {
  std::uint64_t start_address = 0;
  std::uint64_t instruction_pointer = 0;
  std::uint64_t stack_pointer = 0;
  Buffer stack;  // serialized task-local execution state

  Buffer serialize() const {
    BinaryWriter w;
    w.u64(start_address);
    w.u64(instruction_pointer);
    w.u64(stack_pointer);
    w.blob(stack);
    return std::move(w).take();
  }
  static TaskContext deserialize(BinaryReader& r) {
    TaskContext c;
    c.start_address = r.u64();
    c.instruction_pointer = r.u64();
    c.stack_pointer = r.u64();
    c.stack = r.blob();
    return c;
  }
};

class Task {
 public:
  using ContextProvider = std::function<Buffer()>;
  using ContextRestorer = std::function<void(const Buffer&)>;

  Task(sim::Strand& strand, std::string name, std::uint32_t tid, std::uint64_t start_address,
       bool statically_created)
      : strand_(&strand),
        name_(std::move(name)),
        tid_(tid),
        start_address_(start_address),
        statically_created_(statically_created) {}

  const std::string& name() const { return name_; }
  std::uint32_t tid() const { return tid_; }
  std::uint64_t start_address() const { return start_address_; }
  bool statically_created() const { return statically_created_; }
  sim::Strand& strand() { return *strand_; }

  bool alive() const { return strand_->alive(); }
  bool hung() const { return strand_->hung(); }
  void hang() { strand_->hang(); }
  void unhang() { strand_->unhang(); }

  void set_context_provider(ContextProvider p) { context_provider_ = std::move(p); }
  void set_context_restorer(ContextRestorer r) { context_restorer_ = std::move(r); }

  /// GetThreadContext analogue.
  TaskContext capture_context() const {
    TaskContext c;
    c.start_address = start_address_;
    c.instruction_pointer = start_address_ + 0x40;  // fiction: "inside the routine"
    c.stack_pointer = 0x7ff000000000ull - (static_cast<std::uint64_t>(tid_) << 16);
    if (context_provider_) c.stack = context_provider_();
    return c;
  }

  /// SetThreadContext analogue.
  void restore_context(const TaskContext& c) {
    if (context_restorer_) context_restorer_(c.stack);
  }

 private:
  sim::Strand* strand_;
  std::string name_;
  std::uint32_t tid_;
  std::uint64_t start_address_;
  bool statically_created_;
  ContextProvider context_provider_;
  ContextRestorer context_restorer_;
};

}  // namespace oftt::nt
