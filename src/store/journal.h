// Durable state store: a log-structured write-ahead journal on the
// node's simulated disk (sim::DiskStore).
//
// The paper's recovery manager restarts failed applications and leans
// on MSMQ *recoverable* messages surviving node death — but the OFTT
// checkpoints themselves previously existed only in the peer FTIM's
// memory (plus one loose disk key), so a rebooted node came back empty
// and had to re-fetch everything over the wire. The journal gives every
// node a cheap local recovery tier below the expensive global one
// (replay your own disk before resyncing from the primary), following
// the escalation idea of the DIR Net line of work.
//
// Format: the journal is a sequence of fixed-name segments
// ("<prefix>.seg.<%08u>") on the DiskStore. Each segment holds
// CRC-framed, length-prefixed records:
//
//   [u32 magic][u32 frame_len][u32 crc][u8 type][u64 id][u64 base][payload]
//    \------------- header -------------/\------ crc covers this ------/
//
//   frame_len = bytes after the crc field (type..payload)
//   crc      = CRC-32 over type..payload
//   type     = kSnapshot | kDelta | kMessage
//   id       = record sequence id (checkpoint seq / message ordinal)
//   base     = for kDelta: the id this delta applies on top of
//
// Write path: append() frames the record into the active segment and
// rewrites that segment's DiskStore value (the moral equivalent of an
// fwrite+fsync of the tail). When the active segment exceeds
// segment_bytes the journal rotates to a fresh one. Appending a
// kSnapshot retires every strictly older segment — they are wholly
// shadowed by the newer snapshot — via compact().
//
// Read path: recover() scans segments in order and returns every intact
// record. A corrupt or torn record ends the scan of its segment (frame
// boundaries after it are untrustworthy); a torn tail in the *last*
// segment is the expected crash signature and simply truncates the
// recovered suffix. recover_image() additionally folds the records into
// "newest snapshot + the delta chain on top of it", which is what a
// cold-restarting FTIM replays.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "obs/metrics.h"

namespace oftt::sim {
class Simulation;
}

namespace oftt::store {

enum class RecordType : std::uint8_t {
  kSnapshot = 1,  // self-contained image; shadows everything before it
  kDelta = 2,     // applies on top of record `base`
  kMessage = 3,   // journaled in-flight message (diverter retry state)
  kDecision = 4,  // semi-active decision-log entry (id = decision seq)
  kPolicy = 5,    // active replication policy (payload = mode byte)
};

struct Record {
  RecordType type = RecordType::kSnapshot;
  std::uint64_t id = 0;
  std::uint64_t base = 0;
  Buffer payload;
};

struct JournalOptions {
  /// Rotate the active segment once it exceeds this many bytes.
  std::size_t segment_bytes = 64 * 1024;
  /// Retire segments older than the newest snapshot automatically on
  /// every snapshot append.
  bool auto_compact = true;
  /// For snapshot-free journals (pure message logs): keep at most this
  /// many segments, dropping the oldest. 0 = unbounded.
  std::size_t max_segments = 0;
};

/// What recover_image() reconstructs: the newest durable snapshot plus
/// the consecutive delta suffix on top of it, in apply order.
struct RecoveredImage {
  Buffer snapshot;
  std::uint64_t snapshot_id = 0;
  std::vector<Record> deltas;  // base-chained, ascending ids
  /// id of the newest record in the chain (snapshot_id if no deltas).
  std::uint64_t last_id = 0;
  bool valid = false;  // false: no intact snapshot found
};

class Journal {
 public:
  /// Opens (and scans) the journal stored under `prefix` on `node`'s
  /// disk. Existing segments are inventoried so appends continue where
  /// the previous incarnation stopped.
  Journal(sim::Simulation& sim, int node, std::string prefix,
          JournalOptions options = JournalOptions());

  /// Append one record; returns false when the disk refused the write
  /// (full/failed disk) — the record is then NOT durable and the
  /// in-memory segment image is rolled back so a later retry re-frames
  /// cleanly.
  bool append(RecordType type, std::uint64_t id, std::uint64_t base, const Buffer& payload);

  /// Retire every segment strictly older than the one holding the
  /// newest snapshot record; returns bytes reclaimed.
  std::size_t compact();

  /// Scan all segments and return every intact record in log order.
  std::vector<Record> recover() const;

  /// Fold recover() into newest-snapshot + chained delta suffix.
  RecoveredImage recover_image() const;

  /// Destroy the journal on disk (all segments).
  void wipe();

  // --- introspection ---
  std::size_t segment_count() const { return segments_.size(); }
  std::uint64_t records_appended() const { return records_appended_; }
  std::uint64_t bytes_appended() const { return bytes_appended_; }
  std::uint64_t append_failures() const { return append_failures_; }
  std::uint64_t compactions() const { return compactions_; }
  std::uint64_t bytes_reclaimed() const { return bytes_reclaimed_; }
  const std::string& prefix() const { return prefix_; }

 private:
  struct Segment {
    std::uint32_t index = 0;
    std::size_t bytes = 0;
    bool has_snapshot = false;
    std::uint64_t max_snapshot_id = 0;
  };

  std::string segment_key(std::uint32_t index) const;
  Segment& active_segment();
  void rotate();
  void drop_oldest_over_cap();
  /// Parse one segment's bytes; appends intact records to `out` and
  /// stops at the first corrupt/torn frame. Returns the number of valid
  /// bytes — the trustworthy prefix appends may continue after.
  static std::size_t scan_segment(const Buffer& bytes, std::vector<Record>* out);

  sim::Simulation* sim_;
  int node_;
  std::string prefix_;
  JournalOptions options_;
  std::vector<Segment> segments_;  // ascending index order
  Buffer active_bytes_;            // in-memory image of the active segment

  std::uint64_t records_appended_ = 0;
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t append_failures_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t bytes_reclaimed_ = 0;

  // Shared metric cells across all journals in a simulation.
  obs::Counter ctr_bytes_written_;
  obs::Counter ctr_records_;
  obs::Counter ctr_append_failures_;
  obs::Counter ctr_reclaimed_;
  obs::Gauge segments_gauge_;
};

}  // namespace oftt::store
