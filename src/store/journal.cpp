#include "store/journal.h"

#include <algorithm>
#include <cstdio>

#include "obs/telemetry.h"
#include "sim/disk.h"
#include "sim/simulation.h"

namespace oftt::store {
namespace {

constexpr std::uint32_t kMagic = 0x4A54464Fu;  // "OFTJ"
// Fixed bytes before the payload inside the crc-covered body.
constexpr std::size_t kBodyHeader = 1 + 8 + 8;  // type + id + base
// Frame preamble outside the crc: magic + frame_len + crc.
constexpr std::size_t kPreamble = 4 + 4 + 4;

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

Journal::Journal(sim::Simulation& sim, int node, std::string prefix, JournalOptions options)
    : sim_(&sim),
      node_(node),
      prefix_(std::move(prefix)),
      options_(options),
      ctr_bytes_written_(sim.telemetry().metrics().counter("store.journal_bytes_written")),
      ctr_records_(sim.telemetry().metrics().counter("store.journal_records")),
      ctr_append_failures_(
          sim.telemetry().metrics().counter("store.journal_append_failures")),
      ctr_reclaimed_(sim.telemetry().metrics().counter("store.journal_reclaimed_bytes")),
      segments_gauge_(sim.telemetry().metrics().gauge("store.journal_segments")) {
  auto& disk = sim::DiskStore::of(sim);
  std::vector<std::uint32_t> indices;
  const std::string seg_prefix = prefix_ + ".seg.";
  for (const std::string& key : disk.keys_with_prefix(node_, seg_prefix)) {
    indices.push_back(
        static_cast<std::uint32_t>(std::strtoul(key.c_str() + seg_prefix.size(), nullptr, 10)));
  }
  std::sort(indices.begin(), indices.end());
  for (std::uint32_t index : indices) {
    auto bytes = disk.read(node_, segment_key(index));
    if (!bytes) continue;
    Segment seg;
    seg.index = index;
    std::vector<Record> records;
    seg.bytes = scan_segment(*bytes, &records);
    for (const Record& r : records) {
      if (r.type == RecordType::kSnapshot) {
        seg.has_snapshot = true;
        seg.max_snapshot_id = std::max(seg.max_snapshot_id, r.id);
      }
    }
    segments_.push_back(seg);
  }
  if (!segments_.empty()) {
    // Resume appending after the last *intact* record: a torn tail from
    // the crash that ended the previous incarnation is truncated here,
    // so fresh frames land on a trustworthy boundary.
    auto bytes = disk.read(node_, segment_key(segments_.back().index));
    active_bytes_ = bytes ? *bytes : Buffer{};
    active_bytes_.resize(segments_.back().bytes);
  }
  segments_gauge_.add(static_cast<std::int64_t>(segments_.size()));
}

std::string Journal::segment_key(std::uint32_t index) const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08u", index);
  return prefix_ + ".seg." + buf;
}

Journal::Segment& Journal::active_segment() {
  if (segments_.empty()) {
    segments_.push_back(Segment{});
    segments_gauge_.add(1);
  }
  return segments_.back();
}

bool Journal::append(RecordType type, std::uint64_t id, std::uint64_t base,
                     const Buffer& payload) {
  Segment& seg = active_segment();

  BinaryWriter body;
  body.u8(static_cast<std::uint8_t>(type));
  body.u64(id);
  body.u64(base);
  body.raw(payload.data(), payload.size());
  const Buffer& body_bytes = body.data();

  BinaryWriter frame;
  frame.u32(kMagic);
  frame.u32(static_cast<std::uint32_t>(body_bytes.size()));
  frame.u32(crc32(body_bytes));
  frame.raw(body_bytes.data(), body_bytes.size());

  Buffer candidate = active_bytes_;
  candidate.insert(candidate.end(), frame.data().begin(), frame.data().end());
  if (!sim::DiskStore::of(*sim_).write(node_, segment_key(seg.index), candidate)) {
    // The disk refused (full / failed). active_bytes_ still mirrors the
    // durable content, so nothing to roll back.
    ++append_failures_;
    ctr_append_failures_.inc();
    return false;
  }
  active_bytes_ = std::move(candidate);
  seg.bytes = active_bytes_.size();
  if (type == RecordType::kSnapshot) {
    seg.has_snapshot = true;
    seg.max_snapshot_id = std::max(seg.max_snapshot_id, id);
  }
  ++records_appended_;
  bytes_appended_ += frame.size();
  ctr_records_.inc();
  ctr_bytes_written_.inc(frame.size());

  if (type == RecordType::kSnapshot && options_.auto_compact) compact();
  if (active_bytes_.size() >= options_.segment_bytes) rotate();
  drop_oldest_over_cap();
  return true;
}

void Journal::rotate() {
  std::uint32_t next = segments_.empty() ? 0 : segments_.back().index + 1;
  segments_.push_back(Segment{next});
  segments_gauge_.add(1);
  active_bytes_.clear();
}

void Journal::drop_oldest_over_cap() {
  if (options_.max_segments == 0) return;
  auto& disk = sim::DiskStore::of(*sim_);
  while (segments_.size() > options_.max_segments) {
    bytes_reclaimed_ += segments_.front().bytes;
    ctr_reclaimed_.inc(segments_.front().bytes);
    disk.erase(node_, segment_key(segments_.front().index));
    segments_.erase(segments_.begin());
    segments_gauge_.add(-1);
  }
}

std::size_t Journal::compact() {
  // Newest segment holding a snapshot: everything strictly older is
  // wholly shadowed (recovery starts at the newest snapshot).
  std::ptrdiff_t keep_from = -1;
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(segments_.size()) - 1; i >= 0; --i) {
    if (segments_[static_cast<std::size_t>(i)].has_snapshot) {
      keep_from = i;
      break;
    }
  }
  if (keep_from <= 0) return 0;
  auto& disk = sim::DiskStore::of(*sim_);
  std::size_t reclaimed = 0;
  for (std::ptrdiff_t i = 0; i < keep_from; ++i) {
    reclaimed += segments_[static_cast<std::size_t>(i)].bytes;
    disk.erase(node_, segment_key(segments_[static_cast<std::size_t>(i)].index));
  }
  segments_.erase(segments_.begin(), segments_.begin() + keep_from);
  segments_gauge_.add(-static_cast<std::int64_t>(keep_from));
  if (reclaimed > 0) {
    ++compactions_;
    bytes_reclaimed_ += reclaimed;
    ctr_reclaimed_.inc(reclaimed);
  }
  return reclaimed;
}

std::size_t Journal::scan_segment(const Buffer& bytes, std::vector<Record>* out) {
  std::size_t pos = 0;
  while (bytes.size() - pos >= kPreamble) {
    const std::uint8_t* p = bytes.data() + pos;
    if (read_u32(p) != kMagic) break;
    const std::uint32_t frame_len = read_u32(p + 4);
    const std::uint32_t crc = read_u32(p + 8);
    if (frame_len < kBodyHeader || frame_len > bytes.size() - pos - kPreamble) break;
    const std::uint8_t* body = p + kPreamble;
    if (crc32(body, frame_len) != crc) break;
    Record r;
    r.type = static_cast<RecordType>(body[0]);
    r.id = read_u64(body + 1);
    r.base = read_u64(body + 9);
    r.payload.assign(body + kBodyHeader, body + frame_len);
    if (out) out->push_back(std::move(r));
    pos += kPreamble + frame_len;
  }
  return pos;
}

void Journal::wipe() {
  sim::DiskStore::of(*sim_).erase_prefix(node_, prefix_ + ".seg.");
  segments_gauge_.add(-static_cast<std::int64_t>(segments_.size()));
  segments_.clear();
  active_bytes_.clear();
}

std::vector<Record> Journal::recover() const {
  std::vector<Record> out;
  auto& disk = sim::DiskStore::of(*sim_);
  for (const Segment& seg : segments_) {
    auto bytes = disk.read(node_, segment_key(seg.index));
    if (!bytes) continue;
    scan_segment(*bytes, &out);
  }
  return out;
}

RecoveredImage Journal::recover_image() const {
  RecoveredImage img;
  std::vector<Record> records = recover();
  std::ptrdiff_t snap_at = -1;
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(records.size()) - 1; i >= 0; --i) {
    if (records[static_cast<std::size_t>(i)].type == RecordType::kSnapshot) {
      snap_at = i;
      break;
    }
  }
  if (snap_at < 0) return img;
  Record& snap = records[static_cast<std::size_t>(snap_at)];
  img.valid = true;
  img.snapshot = std::move(snap.payload);
  img.snapshot_id = snap.id;
  img.last_id = snap.id;
  for (std::size_t i = static_cast<std::size_t>(snap_at) + 1; i < records.size(); ++i) {
    Record& r = records[i];
    if (r.type != RecordType::kDelta) continue;
    if (r.base != img.last_id) continue;  // chain break: later deltas unusable
    img.last_id = r.id;
    img.deltas.push_back(std::move(r));
  }
  return img;
}

}  // namespace oftt::store
