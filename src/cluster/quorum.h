// Quorum-gated promotion bookkeeping: the candidate side (Campaign)
// and the voter side (VoteLedger).
//
// A backup that believes the primary is dead does not promote on its
// own timer expiry (the pair protocol's behaviour, which tolerates a
// split-brain window during partitions). Instead it opens a Campaign
// for incarnation i+1, asks every live member for an ack, and only
// promotes once acks (plus its own vote) reach a majority of the FULL
// configured membership. Voters grant at most one candidate per
// incarnation — the VoteLedger is what makes two concurrent candidates
// for the same incarnation mutually exclusive.
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "sim/time.h"

namespace oftt::cluster {

/// Candidate-side state for one promotion attempt.
struct Campaign {
  bool active = false;
  /// The incarnation this candidate proposes to take over at.
  std::uint32_t incarnation = 0;
  sim::SimTime started = 0;
  std::string reason;
  /// When the failure evidence was observed (feeds the failover span).
  sim::SimTime evidence = 0;
  /// Nodes that granted us their ack. Our own vote is implicit.
  std::set<int> votes;
  int retries = 0;

  /// Votes counted toward quorum: granted acks plus our own.
  int tally() const { return static_cast<int>(votes.size()) + 1; }
  void clear() { *this = Campaign{}; }
};

/// Voter-side state: remembers the highest incarnation voted for and
/// which candidate got it, so a voter never acks two different
/// candidates for the same incarnation.
class VoteLedger {
 public:
  /// Returns true iff the vote is granted: first request for an
  /// incarnation above anything granted so far, or an idempotent
  /// repeat from the same candidate at the granted incarnation.
  bool grant(std::uint32_t incarnation, int candidate);

  std::uint32_t granted_incarnation() const { return granted_incarnation_; }
  int granted_candidate() const { return granted_candidate_; }

 private:
  std::uint32_t granted_incarnation_ = 0;
  int granted_candidate_ = -1;
};

}  // namespace oftt::cluster
