// MembershipView: the versioned node list at the heart of N-replica
// role management. The paper's OFTT Engine knows exactly one peer; this
// module generalizes that to a ranked member list so an execution unit
// can run one primary plus N-1 backups with deterministic succession.
//
// The view is a small replicated datum, not a consensus log: the
// primary owns it (bumps `version` on every change and gossips it with
// its heartbeats), and everyone else adopts whichever view carries the
// highest (incarnation, version) pair. Promotions go through the
// quorum gate (see cluster/quorum.h), so two views can only compete
// across a partition — and at most one side of a partition can reach
// quorum over the full member list.
//
// Layering: cluster sits below core (core/engine delegates its role
// decisions here) and above common/sim; it knows nothing about
// processes, datagrams, or the engine wire protocol.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "sim/time.h"

namespace oftt::cluster {

enum class MemberRole : std::uint8_t {
  kUnknown = 0,
  kPrimary = 1,
  kBackup = 2,
  /// Declared failed and re-ranked to the back of the succession order;
  /// kept in the list (quorum counts the full configured membership).
  kDead = 3,
};

const char* member_role_name(MemberRole r);

struct Member {
  int node = -1;
  /// Succession order: rank 0 is the primary, rank 1 its first
  /// successor, and so on. Survivors re-rank after every promotion.
  int rank = 0;
  MemberRole role = MemberRole::kUnknown;
  std::uint32_t incarnation = 0;
  /// Freshest proof of life the view's owner has for this member.
  sim::SimTime last_heartbeat = 0;

  bool operator==(const Member&) const = default;
};

/// Votes needed before a backup may self-promote: a strict majority of
/// the FULL configured membership (dead members still count — the
/// static-quorum rule is what keeps a minority partition from ever
/// promoting). A two-member view cannot form a majority without the
/// failed peer, so N=2 degrades to the paper's pair protocol: the
/// survivor's own vote suffices and the split-brain window is closed
/// after the fact by incarnation arbitration.
int quorum_required(std::size_t view_size);

struct MembershipView {
  /// Bumped by the owner on every membership/rank change.
  std::uint64_t version = 0;
  /// Incarnation of the primary this view was built for. Views compare
  /// by (incarnation, version), so a freshly promoted primary's view
  /// supersedes any number of updates from its predecessor.
  std::uint32_t incarnation = 0;
  std::vector<Member> members;  // kept sorted by rank

  /// Rank-ordered initial view: nodes[i] gets rank i, role unknown.
  static MembershipView initial(const std::vector<int>& nodes);

  const Member* find(int node) const;
  Member* find(int node);
  const Member* primary() const;
  std::size_t size() const { return members.size(); }
  int quorum() const { return quorum_required(members.size()); }
  bool knows(int node) const { return find(node) != nullptr; }

  /// True when `other` strictly supersedes this view.
  bool superseded_by(const MembershipView& other) const;
  /// Adopt `other` if it supersedes this view; on an identical
  /// (incarnation, version) pair, only freshen per-member heartbeat
  /// observations. Returns true when the member list itself changed.
  bool merge(const MembershipView& other);

  /// Wire format (embedded in core's ViewGossip / StatusReport).
  void encode(BinaryWriter& w) const;
  static bool decode(BinaryReader& r, MembershipView& out);

  /// One-line operator rendering: "v3 inc2: 1*P 2.B 0!D" (rank order;
  /// * primary, . backup, ! dead, ? unknown).
  std::string summary() const;

  bool operator==(const MembershipView&) const = default;
};

}  // namespace oftt::cluster
