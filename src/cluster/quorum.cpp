#include "cluster/quorum.h"

namespace oftt::cluster {

bool VoteLedger::grant(std::uint32_t incarnation, int candidate) {
  if (incarnation > granted_incarnation_) {
    granted_incarnation_ = incarnation;
    granted_candidate_ = candidate;
    return true;
  }
  if (incarnation == granted_incarnation_ && candidate == granted_candidate_ &&
      granted_candidate_ >= 0) {
    return true;  // retransmitted request from the same candidate
  }
  return false;
}

}  // namespace oftt::cluster
