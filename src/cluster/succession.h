// SuccessionPlanner: deterministic rank-ordered promotion.
//
// Succession is a pure function of (view, live set): the live member
// with the lowest rank is the designated successor, so every survivor
// that can see the same view computes the same answer without any
// coordination round. Coordination only enters through the quorum gate
// (cluster/quorum.h) — the successor still has to collect majority
// acks before it may act on the plan.
#pragma once

#include <set>

#include "cluster/membership.h"

namespace oftt::cluster {

class SuccessionPlanner {
 public:
  /// The node every survivor should expect to take over: the
  /// lowest-ranked member of `view` that is in `live`. Dead members are
  /// skipped even if (stalely) listed live. Returns -1 if nobody
  /// qualifies.
  static int successor(const MembershipView& view, const std::set<int>& live);

  /// Replication-aware variant: prefer the lowest-ranked live member
  /// that is also in `eligible` (replicas fresh enough to promote per
  /// their policy's staleness bound). Falls back to the plain live-only
  /// answer when no live member is eligible — a stale replica beats no
  /// primary at all; it restores what state it has.
  static int successor(const MembershipView& view, const std::set<int>& live,
                       const std::set<int>& eligible);

  /// Rewrite `view` for `new_primary` taking over at `incarnation`:
  /// the new primary gets rank 0, live survivors re-rank 1..k in their
  /// previous relative order, and members not in `live` are marked dead
  /// and ranked after every survivor (still counted for quorum).
  /// Bumps the view version.
  static void promote(MembershipView& view, int new_primary, std::uint32_t incarnation,
                      const std::set<int>& live);

  /// A previously dead member came back: readmit it as a backup with
  /// the worst rank (it re-earns seniority from the back of the line).
  /// No-op if the node is unknown or not dead. Bumps the version on
  /// change; returns true if the view changed.
  static bool rejoin(MembershipView& view, int node);
};

}  // namespace oftt::cluster
