#include "cluster/membership.h"

#include <algorithm>

namespace oftt::cluster {

const char* member_role_name(MemberRole r) {
  switch (r) {
    case MemberRole::kUnknown: return "unknown";
    case MemberRole::kPrimary: return "primary";
    case MemberRole::kBackup: return "backup";
    case MemberRole::kDead: return "dead";
  }
  return "?";
}

int quorum_required(std::size_t view_size) {
  if (view_size <= 2) return 1;
  return static_cast<int>(view_size / 2) + 1;
}

MembershipView MembershipView::initial(const std::vector<int>& nodes) {
  MembershipView v;
  v.members.reserve(nodes.size());
  int rank = 0;
  for (int node : nodes) {
    Member m;
    m.node = node;
    m.rank = rank++;
    v.members.push_back(m);
  }
  return v;
}

const Member* MembershipView::find(int node) const {
  for (const Member& m : members) {
    if (m.node == node) return &m;
  }
  return nullptr;
}

Member* MembershipView::find(int node) {
  for (Member& m : members) {
    if (m.node == node) return &m;
  }
  return nullptr;
}

const Member* MembershipView::primary() const {
  for (const Member& m : members) {
    if (m.role == MemberRole::kPrimary) return &m;
  }
  return nullptr;
}

bool MembershipView::superseded_by(const MembershipView& other) const {
  if (other.incarnation != incarnation) return other.incarnation > incarnation;
  return other.version > version;
}

bool MembershipView::merge(const MembershipView& other) {
  if (superseded_by(other)) {
    // Adopt the newer view wholesale, but never lose a fresher local
    // heartbeat observation: the owner's view of a member may be staler
    // than what we heard ourselves.
    MembershipView adopted = other;
    for (Member& m : adopted.members) {
      if (const Member* mine = find(m.node)) {
        m.last_heartbeat = std::max(m.last_heartbeat, mine->last_heartbeat);
      }
    }
    bool structural = adopted.members.size() != members.size();
    if (!structural) {
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (members[i].node != adopted.members[i].node ||
            members[i].rank != adopted.members[i].rank ||
            members[i].role != adopted.members[i].role) {
          structural = true;
          break;
        }
      }
    }
    *this = std::move(adopted);
    return structural;
  }
  if (other.incarnation == incarnation && other.version == version) {
    for (Member& m : members) {
      if (const Member* theirs = other.find(m.node)) {
        m.last_heartbeat = std::max(m.last_heartbeat, theirs->last_heartbeat);
      }
    }
  }
  return false;
}

void MembershipView::encode(BinaryWriter& w) const {
  w.u64(version);
  w.u32(incarnation);
  w.u16(static_cast<std::uint16_t>(members.size()));
  for (const Member& m : members) {
    w.i32(m.node);
    w.i32(m.rank);
    w.u8(static_cast<std::uint8_t>(m.role));
    w.u32(m.incarnation);
    w.i64(m.last_heartbeat);
  }
}

bool MembershipView::decode(BinaryReader& r, MembershipView& out) {
  out = MembershipView{};
  out.version = r.u64();
  out.incarnation = r.u32();
  std::uint16_t n = r.u16();
  if (r.failed()) return false;
  // A member serializes to 21 bytes (i32 node + i32 rank + u8 role +
  // u32 incarnation + i64 last_heartbeat): reject garbage counts before
  // reserve() allocates anything.
  if (n > r.remaining() / 21) return false;
  out.members.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    Member m;
    m.node = r.i32();
    m.rank = r.i32();
    std::uint8_t role = r.u8();
    if (role > static_cast<std::uint8_t>(MemberRole::kDead)) return false;
    m.role = static_cast<MemberRole>(role);
    m.incarnation = r.u32();
    m.last_heartbeat = r.i64();
    if (r.failed()) return false;
    out.members.push_back(m);
  }
  return !r.failed();
}

std::string MembershipView::summary() const {
  // Built by append: GCC 12's -Wrestrict falsely fires on chained
  // operator+ of a literal and a std::to_string temporary at -O3.
  std::string s = "v";
  s += std::to_string(version);
  s += " inc";
  s += std::to_string(incarnation);
  s += ':';
  for (const Member& m : members) {
    char mark = '?';
    switch (m.role) {
      case MemberRole::kPrimary: mark = '*'; break;
      case MemberRole::kBackup: mark = '.'; break;
      case MemberRole::kDead: mark = '!'; break;
      case MemberRole::kUnknown: mark = '?'; break;
    }
    s += ' ';
    s += std::to_string(m.node);
    s += mark;
  }
  return s;
}

}  // namespace oftt::cluster
