#include "cluster/succession.h"

#include <algorithm>

namespace oftt::cluster {

int SuccessionPlanner::successor(const MembershipView& view, const std::set<int>& live) {
  const Member* best = nullptr;
  for (const Member& m : view.members) {
    if (m.role == MemberRole::kDead) continue;
    if (live.find(m.node) == live.end()) continue;
    if (best == nullptr || m.rank < best->rank) best = &m;
  }
  return best != nullptr ? best->node : -1;
}

int SuccessionPlanner::successor(const MembershipView& view, const std::set<int>& live,
                                 const std::set<int>& eligible) {
  const Member* best = nullptr;
  for (const Member& m : view.members) {
    if (m.role == MemberRole::kDead) continue;
    if (live.find(m.node) == live.end()) continue;
    if (eligible.find(m.node) == eligible.end()) continue;
    if (best == nullptr || m.rank < best->rank) best = &m;
  }
  if (best != nullptr) return best->node;
  // Nobody both live and eligible: degrade to seniority among the
  // living rather than leaving the unit headless.
  return successor(view, live);
}

void SuccessionPlanner::promote(MembershipView& view, int new_primary,
                                std::uint32_t incarnation, const std::set<int>& live) {
  std::stable_sort(view.members.begin(), view.members.end(),
                   [](const Member& a, const Member& b) { return a.rank < b.rank; });
  std::vector<Member> survivors, dead;
  for (Member& m : view.members) {
    if (m.node == new_primary) {
      m.role = MemberRole::kPrimary;
      m.incarnation = incarnation;
      survivors.insert(survivors.begin(), m);
    } else if (live.find(m.node) != live.end() && m.role != MemberRole::kDead) {
      m.role = MemberRole::kBackup;
      survivors.push_back(m);
    } else {
      m.role = MemberRole::kDead;
      dead.push_back(m);
    }
  }
  int rank = 0;
  for (Member& m : survivors) m.rank = rank++;
  for (Member& m : dead) m.rank = rank++;
  view.members = std::move(survivors);
  view.members.insert(view.members.end(), dead.begin(), dead.end());
  view.incarnation = incarnation;
  ++view.version;
}

bool SuccessionPlanner::rejoin(MembershipView& view, int node) {
  Member* m = view.find(node);
  if (m == nullptr || m->role != MemberRole::kDead) return false;
  int worst = -1;
  for (const Member& other : view.members) worst = std::max(worst, other.rank);
  m->role = MemberRole::kBackup;
  m->rank = worst + 1;
  std::stable_sort(view.members.begin(), view.members.end(),
                   [](const Member& a, const Member& b) { return a.rank < b.rank; });
  // Compact ranks so they stay dense after repeated rejoin cycles.
  int rank = 0;
  for (Member& other : view.members) other.rank = rank++;
  ++view.version;
  return true;
}

}  // namespace oftt::cluster
