#include "msmq/queue_manager.h"

#include "common/logging.h"
#include "common/strings.h"
#include "sim/simulation.h"

namespace oftt::msmq {
namespace {

constexpr const char* kQueuePersistPrefix = "mq.q.";
constexpr const char* kOutgoingPersistKey = "mq.out";

Buffer encode_xfer(const Message& msg) {
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MqPacket::kXfer));
  msg.marshal(w);
  return std::move(w).take();
}

}  // namespace

QueueManager::QueueManager(sim::Process& process)
    : process_(&process),
      ctr_bad_packet_(process.sim().telemetry().metrics().counter("msmq.bad_packet")),
      ctr_quota_rejected_(
          process.sim().telemetry().metrics().counter("msmq.quota_rejected")),
      ctr_dead_lettered_(process.sim().telemetry().metrics().counter("msmq.dead_lettered")),
      outgoing_depth_gauge_(process.sim().telemetry().metrics().gauge(
          cat("msmq.outgoing_depth.", process.node().name()))),
      redelivery_timer_(process.main_strand()) {
  process_->bind(kMsmqPort, [this](const sim::Datagram& d) { on_datagram(d); });
  transport::SessionConfig sc;
  sc.networks = {config_.preferred_network};
  sc.rto_initial = sim::milliseconds(200);
  sc.rto_max = sim::milliseconds(500);
  sc.queue_cap = 1 << 20;  // store-and-forward: the disk is the limit
  sc.queue_policy = transport::QueuePolicy::kReject;
  ep_ = std::make_unique<transport::Endpoint>(process.main_strand(), kMsmqPort,
                                              std::move(sc));
  ep_->on_deliver([this](int, int, const Buffer& payload) {
    BinaryReader r(payload);
    if (static_cast<MqPacket>(r.u8()) != MqPacket::kXfer) {
      ctr_bad_packet_.inc();
      return;
    }
    handle_xfer(r);
  });
  restore_from_disk();
  // Transfers restored from disk dispatch one tick later, so a boot
  // script's synchronous set_route() can repoint them first.
  process_->main_strand().schedule_after(sim::milliseconds(1), [this] {
    std::vector<std::uint64_t> ids;
    for (const auto& [id, e] : outgoing_) {
      if (e.dispatched_to < 0) ids.push_back(id);
    }
    for (std::uint64_t id : ids) dispatch_entry(id);
  });
  redelivery_timer_.start(config_.redelivery_timeout, [this] {
    sim::SimTime now = process_->sim().now();
    for (auto& [qname, q] : queues_) {
      bool changed = false;
      for (auto it = q.unacked.begin(); it != q.unacked.end();) {
        if (now - it->second.delivered_at >= config_.redelivery_timeout) {
          q.ready.push_back(std::move(it->second.msg));
          it = q.unacked.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
      if (changed) pump_queue(qname);
    }
  });
}

QueueManager* QueueManager::find(sim::Node& node) {
  auto proc = node.find_process("msmq");
  if (!proc || !proc->alive()) return nullptr;
  return proc->find_attachment<QueueManager>();
}

std::shared_ptr<sim::Process> QueueManager::install(sim::Node& node) {
  return node.start_process("msmq", [](sim::Process& proc) {
    proc.attachment<QueueManager>(proc);
  });
}

void QueueManager::set_route(const std::string& queue, int node) {
  if (node < 0) {
    routes_.erase(queue);
  } else {
    routes_[queue] = node;
  }
  // Chase the new destination: any outgoing transfer whose resolved
  // route no longer matches where it sits in a session gets cancelled
  // there and re-dispatched (possibly delivered locally).
  std::vector<std::uint64_t> stale;
  for (const auto& [id, e] : outgoing_) {
    if (e.msg.queue != queue) continue;
    int dest = route(e.msg.queue);
    if (dest == e.dispatched_to) continue;
    stale.push_back(id);
  }
  for (std::uint64_t id : stale) {
    OutgoingEntry& e = outgoing_[id];
    if (e.dispatched_to >= 0) ep_->cancel(e.dispatched_to, id);
    e.dispatched_to = -1;
    dispatch_entry(id);
  }
}

int QueueManager::route(const std::string& queue) const {
  auto it = routes_.find(queue);
  return it == routes_.end() ? -1 : it->second;
}

std::size_t QueueManager::local_depth(const std::string& queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.ready.size() + it->second.unacked.size();
}

std::size_t QueueManager::outgoing_depth() const { return outgoing_.size(); }

void QueueManager::on_datagram(const sim::Datagram& d) {
  if (ep_ && ep_->handle(d)) return;
  BinaryReader r(d.payload);
  auto kind = static_cast<MqPacket>(r.u8());
  switch (kind) {
    case MqPacket::kSend: handle_send(r); break;
    case MqPacket::kSubscribe: handle_subscribe(r); break;
    case MqPacket::kRecvAck: handle_recv_ack(r); break;
    case MqPacket::kXfer: handle_xfer(r); break;  // raw/local path
    default: ctr_bad_packet_.inc(); break;
  }
}

void QueueManager::handle_send(BinaryReader& r) {
  Message msg = Message::unmarshal(r);
  if (r.failed()) return;
  sim::Node& node = process_->node();
  // Assign a globally unique id: node | boot generation | sequence.
  msg.id = (static_cast<std::uint64_t>(node.id()) << 48) |
           (static_cast<std::uint64_t>(node.boot_count() & 0xff) << 40) | next_seq_++;
  msg.src_node = node.id();
  msg.enqueued_at = process_->sim().now();

  int dest = route(msg.queue);
  if (dest < 0 || dest == node.id()) {
    accept_local(std::move(msg));
    return;
  }
  OutgoingEntry entry;
  entry.msg = std::move(msg);
  entry.first_attempt = process_->sim().now();
  std::uint64_t id = entry.msg.id;
  bool recoverable = entry.msg.mode == DeliveryMode::kRecoverable;
  outgoing_.emplace(id, std::move(entry));
  if (recoverable) persist_outgoing();
  dispatch_entry(id);
  outgoing_depth_gauge_.set(static_cast<std::int64_t>(outgoing_.size()));
}

void QueueManager::dispatch_entry(std::uint64_t id) {
  auto it = outgoing_.find(id);
  if (it == outgoing_.end()) return;
  OutgoingEntry& e = it->second;
  int dest = route(e.msg.queue);
  if (dest < 0 || dest == process_->node().id()) {
    // Route points home: deliver locally and retire the entry.
    Message msg = std::move(e.msg);
    bool recoverable = msg.mode == DeliveryMode::kRecoverable;
    outgoing_.erase(it);
    if (recoverable) persist_outgoing();
    outgoing_depth_gauge_.set(static_cast<std::int64_t>(outgoing_.size()));
    accept_local(std::move(msg));
    return;
  }
  if (e.dispatched_to < 0) {
    // First dispatch: arm the time-to-reach-queue deadline. The check
    // re-reads the entry, so completion or rerouting in the meantime is
    // harmless.
    sim::SimTime ttl = config_.time_to_reach_queue;
    sim::SimTime elapsed = process_->sim().now() - e.first_attempt;
    sim::SimTime delay = ttl > elapsed ? ttl - elapsed : 0;
    process_->main_strand().schedule_after(delay + sim::milliseconds(1),
                                           [this, id] { dead_letter_entry(id); });
  }
  e.dispatched_to = dest;
  ep_->send(dest, encode_xfer(e.msg), /*tag=*/id,
            [this, id](std::uint64_t) { complete_entry(id); });
}

void QueueManager::complete_entry(std::uint64_t id) {
  auto it = outgoing_.find(id);
  if (it == outgoing_.end()) return;
  bool recoverable = it->second.msg.mode == DeliveryMode::kRecoverable;
  outgoing_.erase(it);
  if (recoverable) persist_outgoing();
  outgoing_depth_gauge_.set(static_cast<std::int64_t>(outgoing_.size()));
}

void QueueManager::dead_letter_entry(std::uint64_t id) {
  auto it = outgoing_.find(id);
  if (it == outgoing_.end()) return;  // delivered or rerouted home
  OutgoingEntry& e = it->second;
  if (process_->sim().now() - e.first_attempt < config_.time_to_reach_queue) return;
  OFTT_LOG_WARN("msmq", process_->node().name(), ": dead-lettering msg ", e.msg.id,
                " for queue ", e.msg.queue);
  ctr_dead_lettered_.inc();
  if (e.dispatched_to >= 0) ep_->cancel(e.dispatched_to, id);
  Message dl = std::move(e.msg);
  dl.label = cat("DLQ:", dl.queue, ":", dl.label);
  dl.queue = kDeadLetterQueue;
  outgoing_.erase(it);
  persist_outgoing();
  outgoing_depth_gauge_.set(static_cast<std::int64_t>(outgoing_.size()));
  accept_local(std::move(dl));
}

void QueueManager::handle_subscribe(BinaryReader& r) {
  std::string queue = r.str();
  std::string port = r.str();
  if (r.failed()) return;
  LocalQueue& q = queue_ref(queue);
  q.subscriber = Subscriber{process_->node().id(), port, true};
  // A fresh subscriber (e.g. restarted app) inherits unacked messages:
  // push them back for redelivery immediately.
  for (auto it = q.unacked.begin(); it != q.unacked.end();) {
    q.ready.push_back(std::move(it->second.msg));
    it = q.unacked.erase(it);
  }
  pump_queue(queue);
}

void QueueManager::handle_recv_ack(BinaryReader& r) {
  std::uint64_t id = r.u64();
  std::string queue = r.str();
  if (r.failed()) return;
  auto it = queues_.find(queue);
  if (it == queues_.end()) return;
  if (it->second.unacked.erase(id) > 0) {
    persist_queue(queue);
  }
}

void QueueManager::handle_xfer(BinaryReader& r) {
  Message msg = Message::unmarshal(r);
  if (r.failed()) return;
  // The session already suppressed retransmitted duplicates; this
  // message-id check catches what it cannot — the same transfer
  // re-dispatched on a different session after a reroute or a sender
  // session reset.
  LocalQueue& q = queue_ref(msg.queue);
  if (!q.seen_ids.insert(msg.id).second) {
    ++duplicates_dropped_;
    return;
  }
  accept_local(std::move(msg));
}

std::size_t QueueManager::purge(const std::string& queue) {
  auto it = queues_.find(queue);
  if (it == queues_.end()) return 0;
  std::size_t n = it->second.ready.size() + it->second.unacked.size();
  it->second.ready.clear();
  it->second.unacked.clear();
  persist_queue(queue);
  return n;
}

void QueueManager::accept_local(Message msg) {
  std::string qname = msg.queue;
  LocalQueue& q = queue_ref(qname);
  if (config_.queue_quota > 0 &&
      q.ready.size() + q.unacked.size() >= config_.queue_quota) {
    ++quota_rejections_;
    ctr_quota_rejected_.inc();
    return;
  }
  q.ready.push_back(std::move(msg));
  if (q.ready.back().mode == DeliveryMode::kRecoverable) persist_queue(qname);
  pump_queue(qname);
}

void QueueManager::pump_queue(const std::string& qname) {
  LocalQueue& q = queue_ref(qname);
  if (!q.subscriber.active) return;
  while (!q.ready.empty()) {
    Message msg = std::move(q.ready.front());
    q.ready.pop_front();
    BinaryWriter w;
    w.u8(static_cast<std::uint8_t>(MqPacket::kDeliver));
    msg.marshal(w);
    std::uint64_t id = msg.id;
    q.unacked.emplace(id,
                      InFlightDelivery{std::move(msg), process_->sim().now()});
    process_->send(0, process_->node().id(), q.subscriber.port, std::move(w).take(), kMsmqPort);
  }
}

void QueueManager::persist_queue(const std::string& qname) {
  auto it = queues_.find(qname);
  if (it == queues_.end()) return;
  BinaryWriter w;
  std::uint32_t count = 0;
  BinaryWriter body;
  for (const auto& m : it->second.ready) {
    if (m.mode == DeliveryMode::kRecoverable) {
      m.marshal(body);
      ++count;
    }
  }
  for (const auto& [_, inflight] : it->second.unacked) {
    if (inflight.msg.mode == DeliveryMode::kRecoverable) {
      inflight.msg.marshal(body);
      ++count;
    }
  }
  w.u32(count);
  w.raw(body.data().data(), body.size());
  sim::DiskStore::of(process_->sim())
      .write(process_->node().id(), cat(kQueuePersistPrefix, qname), std::move(w).take());
}

void QueueManager::persist_outgoing() {
  BinaryWriter w;
  std::uint32_t count = 0;
  BinaryWriter body;
  for (const auto& [_, e] : outgoing_) {
    if (e.msg.mode == DeliveryMode::kRecoverable) {
      e.msg.marshal(body);
      ++count;
    }
  }
  w.u32(count);
  w.raw(body.data().data(), body.size());
  sim::DiskStore::of(process_->sim())
      .write(process_->node().id(), kOutgoingPersistKey, std::move(w).take());
}

void QueueManager::restore_from_disk() {
  auto& disk = sim::DiskStore::of(process_->sim());
  int node = process_->node().id();
  for (const auto& key : disk.keys_with_prefix(node, kQueuePersistPrefix)) {
    auto blob = disk.read(node, key);
    if (!blob) continue;
    BinaryReader r(*blob);
    std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
      Message m = Message::unmarshal(r);
      if (r.failed()) break;
      LocalQueue& q = queue_ref(m.queue);
      q.seen_ids.insert(m.id);
      q.ready.push_back(std::move(m));
    }
  }
  if (auto blob = disk.read(node, kOutgoingPersistKey)) {
    BinaryReader r(*blob);
    std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
      Message m = Message::unmarshal(r);
      if (r.failed()) break;
      OutgoingEntry e;
      e.first_attempt = process_->sim().now();
      e.msg = std::move(m);
      outgoing_.emplace(e.msg.id, std::move(e));
    }
    outgoing_depth_gauge_.set(static_cast<std::int64_t>(outgoing_.size()));
  }
}

MsmqApi::MsmqApi(sim::Process& process)
    : process_(&process), recv_port_(cat("mqr.", process.name())) {
  process_->bind(recv_port_, [this](const sim::Datagram& d) { on_deliver(d); });
}

void MsmqApi::send(const std::string& queue, const std::string& label, Buffer body,
                   DeliveryMode mode) {
  Message m;
  m.queue = queue;
  m.label = label;
  m.body = std::move(body);
  m.mode = mode;
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MqPacket::kSend));
  m.marshal(w);
  process_->send(0, process_->node().id(), kMsmqPort, std::move(w).take(), recv_port_);
}

void MsmqApi::subscribe(const std::string& queue, std::function<void(const Message&)> handler) {
  handlers_[queue] = std::move(handler);
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MqPacket::kSubscribe));
  w.str(queue);
  w.str(recv_port_);
  process_->send(0, process_->node().id(), kMsmqPort, std::move(w).take(), recv_port_);
}

void MsmqApi::on_deliver(const sim::Datagram& d) {
  BinaryReader r(d.payload);
  if (static_cast<MqPacket>(r.u8()) != MqPacket::kDeliver) return;
  Message m = Message::unmarshal(r);
  if (r.failed()) return;
  auto it = handlers_.find(m.queue);
  if (it != handlers_.end()) {
    it->second(m);
  }
  // Ack after the handler ran to completion; a crash inside the handler
  // kills this strand before the ack is sent -> redelivery.
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MqPacket::kRecvAck));
  w.u64(m.id);
  w.str(m.queue);
  process_->send(0, process_->node().id(), kMsmqPort, std::move(w).take(), recv_port_);
}

}  // namespace oftt::msmq
