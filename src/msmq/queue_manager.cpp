#include "msmq/queue_manager.h"

#include "common/logging.h"
#include "common/strings.h"
#include "sim/simulation.h"

namespace oftt::msmq {
namespace {

constexpr const char* kQueuePersistPrefix = "mq.q.";
constexpr const char* kOutgoingPersistKey = "mq.out";

}  // namespace

QueueManager::QueueManager(sim::Process& process)
    : process_(&process),
      ctr_bad_packet_(process.sim().telemetry().metrics().counter("msmq.bad_packet")),
      ctr_quota_rejected_(
          process.sim().telemetry().metrics().counter("msmq.quota_rejected")),
      ctr_dead_lettered_(process.sim().telemetry().metrics().counter("msmq.dead_lettered")),
      outgoing_depth_gauge_(process.sim().telemetry().metrics().gauge(
          cat("msmq.outgoing_depth.", process.node().name()))),
      retry_timer_(process.main_strand()),
      redelivery_timer_(process.main_strand()) {
  process_->bind(kMsmqPort, [this](const sim::Datagram& d) { on_datagram(d); });
  restore_from_disk();
  retry_timer_.start(config_.retry_period, [this] { transmit_sweep(); });
  redelivery_timer_.start(config_.redelivery_timeout, [this] {
    sim::SimTime now = process_->sim().now();
    for (auto& [qname, q] : queues_) {
      bool changed = false;
      for (auto it = q.unacked.begin(); it != q.unacked.end();) {
        if (now - it->second.delivered_at >= config_.redelivery_timeout) {
          q.ready.push_back(std::move(it->second.msg));
          it = q.unacked.erase(it);
          changed = true;
        } else {
          ++it;
        }
      }
      if (changed) pump_queue(qname);
    }
  });
}

QueueManager* QueueManager::find(sim::Node& node) {
  auto proc = node.find_process("msmq");
  if (!proc || !proc->alive()) return nullptr;
  return proc->find_attachment<QueueManager>();
}

std::shared_ptr<sim::Process> QueueManager::install(sim::Node& node) {
  return node.start_process("msmq", [](sim::Process& proc) {
    proc.attachment<QueueManager>(proc);
  });
}

void QueueManager::set_route(const std::string& queue, int node) {
  if (node < 0) {
    routes_.erase(queue);
  } else {
    routes_[queue] = node;
  }
}

int QueueManager::route(const std::string& queue) const {
  auto it = routes_.find(queue);
  return it == routes_.end() ? -1 : it->second;
}

std::size_t QueueManager::local_depth(const std::string& queue) const {
  auto it = queues_.find(queue);
  return it == queues_.end() ? 0 : it->second.ready.size() + it->second.unacked.size();
}

std::size_t QueueManager::outgoing_depth() const { return outgoing_.size(); }

void QueueManager::on_datagram(const sim::Datagram& d) {
  BinaryReader r(d.payload);
  auto kind = static_cast<MqPacket>(r.u8());
  switch (kind) {
    case MqPacket::kSend: handle_send(r); break;
    case MqPacket::kSubscribe: handle_subscribe(r); break;
    case MqPacket::kRecvAck: handle_recv_ack(r); break;
    case MqPacket::kXfer: handle_xfer(d, r); break;
    case MqPacket::kXferAck: handle_xfer_ack(r); break;
    default: ctr_bad_packet_.inc(); break;
  }
}

void QueueManager::handle_send(BinaryReader& r) {
  Message msg = Message::unmarshal(r);
  if (r.failed()) return;
  sim::Node& node = process_->node();
  // Assign a globally unique id: node | boot generation | sequence.
  msg.id = (static_cast<std::uint64_t>(node.id()) << 48) |
           (static_cast<std::uint64_t>(node.boot_count() & 0xff) << 40) | next_seq_++;
  msg.src_node = node.id();
  msg.enqueued_at = process_->sim().now();

  int dest = route(msg.queue);
  if (dest < 0 || dest == node.id()) {
    accept_local(std::move(msg));
    return;
  }
  OutgoingEntry entry;
  entry.msg = std::move(msg);
  entry.first_attempt = process_->sim().now();
  std::uint64_t id = entry.msg.id;
  outgoing_.emplace(id, std::move(entry));
  if (outgoing_[id].msg.mode == DeliveryMode::kRecoverable) persist_outgoing();
  transmit_sweep();
}

void QueueManager::handle_subscribe(BinaryReader& r) {
  std::string queue = r.str();
  std::string port = r.str();
  if (r.failed()) return;
  LocalQueue& q = queue_ref(queue);
  q.subscriber = Subscriber{process_->node().id(), port, true};
  // A fresh subscriber (e.g. restarted app) inherits unacked messages:
  // push them back for redelivery immediately.
  for (auto it = q.unacked.begin(); it != q.unacked.end();) {
    q.ready.push_back(std::move(it->second.msg));
    it = q.unacked.erase(it);
  }
  pump_queue(queue);
}

void QueueManager::handle_recv_ack(BinaryReader& r) {
  std::uint64_t id = r.u64();
  std::string queue = r.str();
  if (r.failed()) return;
  auto it = queues_.find(queue);
  if (it == queues_.end()) return;
  if (it->second.unacked.erase(id) > 0) {
    persist_queue(queue);
  }
}

void QueueManager::handle_xfer(const sim::Datagram& d, BinaryReader& r) {
  Message msg = Message::unmarshal(r);
  if (r.failed()) return;
  // Ack unconditionally (dedup makes re-acks harmless).
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MqPacket::kXferAck));
  w.u64(msg.id);
  int net = sim::pick_network(process_->sim(), process_->node().id(), d.src_node);
  if (net >= 0) {
    process_->send(net, d.src_node, kMsmqPort, std::move(w).take(), kMsmqPort);
  }
  LocalQueue& q = queue_ref(msg.queue);
  if (!q.seen_ids.insert(msg.id).second) {
    ++duplicates_dropped_;
    return;
  }
  accept_local(std::move(msg));
}

void QueueManager::handle_xfer_ack(BinaryReader& r) {
  std::uint64_t id = r.u64();
  if (r.failed()) return;
  auto it = outgoing_.find(id);
  if (it == outgoing_.end()) return;
  bool recoverable = it->second.msg.mode == DeliveryMode::kRecoverable;
  outgoing_.erase(it);
  if (recoverable) persist_outgoing();
}

std::size_t QueueManager::purge(const std::string& queue) {
  auto it = queues_.find(queue);
  if (it == queues_.end()) return 0;
  std::size_t n = it->second.ready.size() + it->second.unacked.size();
  it->second.ready.clear();
  it->second.unacked.clear();
  persist_queue(queue);
  return n;
}

void QueueManager::accept_local(Message msg) {
  std::string qname = msg.queue;
  LocalQueue& q = queue_ref(qname);
  if (config_.queue_quota > 0 &&
      q.ready.size() + q.unacked.size() >= config_.queue_quota) {
    ++quota_rejections_;
    ctr_quota_rejected_.inc();
    return;
  }
  q.ready.push_back(std::move(msg));
  if (q.ready.back().mode == DeliveryMode::kRecoverable) persist_queue(qname);
  pump_queue(qname);
}

void QueueManager::pump_queue(const std::string& qname) {
  LocalQueue& q = queue_ref(qname);
  if (!q.subscriber.active) return;
  while (!q.ready.empty()) {
    Message msg = std::move(q.ready.front());
    q.ready.pop_front();
    BinaryWriter w;
    w.u8(static_cast<std::uint8_t>(MqPacket::kDeliver));
    msg.marshal(w);
    std::uint64_t id = msg.id;
    q.unacked.emplace(id,
                      InFlightDelivery{std::move(msg), process_->sim().now()});
    process_->send(0, process_->node().id(), q.subscriber.port, std::move(w).take(), kMsmqPort);
  }
}

void QueueManager::transmit_sweep() {
  sim::SimTime now = process_->sim().now();
  bool persisted_dirty = false;
  for (auto it = outgoing_.begin(); it != outgoing_.end();) {
    OutgoingEntry& e = it->second;
    if (now - e.first_attempt > config_.time_to_reach_queue) {
      // Exhausted: dead-letter locally.
      OFTT_LOG_WARN("msmq", process_->node().name(), ": dead-lettering msg ", e.msg.id,
                    " for queue ", e.msg.queue);
      ctr_dead_lettered_.inc();
      Message dl = std::move(e.msg);
      dl.label = cat("DLQ:", dl.queue, ":", dl.label);
      dl.queue = kDeadLetterQueue;
      persisted_dirty = true;
      it = outgoing_.erase(it);
      accept_local(std::move(dl));
      continue;
    }
    // Re-resolve the route on every attempt — the diverter may have
    // repointed the logical queue at the new primary.
    int dest = route(e.msg.queue);
    if (dest >= 0 && dest != process_->node().id()) {
      int net = sim::pick_network(process_->sim(), process_->node().id(), dest);
      if (net >= 0) {
        BinaryWriter w;
        w.u8(static_cast<std::uint8_t>(MqPacket::kXfer));
        e.msg.marshal(w);
        process_->send(net, dest, kMsmqPort, std::move(w).take(), kMsmqPort);
        ++transmits_;
        if (e.attempts > 0) ++retries_;
        ++e.attempts;
      }
    } else if (dest < 0 || dest == process_->node().id()) {
      // Route now points home: deliver locally.
      Message msg = std::move(e.msg);
      persisted_dirty = true;
      it = outgoing_.erase(it);
      accept_local(std::move(msg));
      continue;
    }
    ++it;
  }
  if (persisted_dirty) persist_outgoing();
  outgoing_depth_gauge_.set(static_cast<std::int64_t>(outgoing_.size()));
}

void QueueManager::persist_queue(const std::string& qname) {
  auto it = queues_.find(qname);
  if (it == queues_.end()) return;
  BinaryWriter w;
  std::uint32_t count = 0;
  BinaryWriter body;
  for (const auto& m : it->second.ready) {
    if (m.mode == DeliveryMode::kRecoverable) {
      m.marshal(body);
      ++count;
    }
  }
  for (const auto& [_, inflight] : it->second.unacked) {
    if (inflight.msg.mode == DeliveryMode::kRecoverable) {
      inflight.msg.marshal(body);
      ++count;
    }
  }
  w.u32(count);
  w.raw(body.data().data(), body.size());
  sim::DiskStore::of(process_->sim())
      .write(process_->node().id(), cat(kQueuePersistPrefix, qname), std::move(w).take());
}

void QueueManager::persist_outgoing() {
  BinaryWriter w;
  std::uint32_t count = 0;
  BinaryWriter body;
  for (const auto& [_, e] : outgoing_) {
    if (e.msg.mode == DeliveryMode::kRecoverable) {
      e.msg.marshal(body);
      ++count;
    }
  }
  w.u32(count);
  w.raw(body.data().data(), body.size());
  sim::DiskStore::of(process_->sim())
      .write(process_->node().id(), kOutgoingPersistKey, std::move(w).take());
}

void QueueManager::restore_from_disk() {
  auto& disk = sim::DiskStore::of(process_->sim());
  int node = process_->node().id();
  for (const auto& key : disk.keys_with_prefix(node, kQueuePersistPrefix)) {
    auto blob = disk.read(node, key);
    if (!blob) continue;
    BinaryReader r(*blob);
    std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
      Message m = Message::unmarshal(r);
      if (r.failed()) break;
      LocalQueue& q = queue_ref(m.queue);
      q.seen_ids.insert(m.id);
      q.ready.push_back(std::move(m));
    }
  }
  if (auto blob = disk.read(node, kOutgoingPersistKey)) {
    BinaryReader r(*blob);
    std::uint32_t count = r.u32();
    for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
      Message m = Message::unmarshal(r);
      if (r.failed()) break;
      OutgoingEntry e;
      e.first_attempt = process_->sim().now();
      e.msg = std::move(m);
      outgoing_.emplace(e.msg.id, std::move(e));
    }
  }
}

MsmqApi::MsmqApi(sim::Process& process)
    : process_(&process), recv_port_(cat("mqr.", process.name())) {
  process_->bind(recv_port_, [this](const sim::Datagram& d) { on_deliver(d); });
}

void MsmqApi::send(const std::string& queue, const std::string& label, Buffer body,
                   DeliveryMode mode) {
  Message m;
  m.queue = queue;
  m.label = label;
  m.body = std::move(body);
  m.mode = mode;
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MqPacket::kSend));
  m.marshal(w);
  process_->send(0, process_->node().id(), kMsmqPort, std::move(w).take(), recv_port_);
}

void MsmqApi::subscribe(const std::string& queue, std::function<void(const Message&)> handler) {
  handlers_[queue] = std::move(handler);
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MqPacket::kSubscribe));
  w.str(queue);
  w.str(recv_port_);
  process_->send(0, process_->node().id(), kMsmqPort, std::move(w).take(), recv_port_);
}

void MsmqApi::on_deliver(const sim::Datagram& d) {
  BinaryReader r(d.payload);
  if (static_cast<MqPacket>(r.u8()) != MqPacket::kDeliver) return;
  Message m = Message::unmarshal(r);
  if (r.failed()) return;
  auto it = handlers_.find(m.queue);
  if (it != handlers_.end()) {
    it->second(m);
  }
  // Ack after the handler ran to completion; a crash inside the handler
  // kills this strand before the ack is sent -> redelivery.
  BinaryWriter w;
  w.u8(static_cast<std::uint8_t>(MqPacket::kRecvAck));
  w.u64(m.id);
  w.str(m.queue);
  process_->send(0, process_->node().id(), kMsmqPort, std::move(w).take(), recv_port_);
}

}  // namespace oftt::msmq
