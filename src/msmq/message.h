// MSMQ-like message model and wire frames.
//
// Two planes:
//   app <-> local queue manager:  SEND / SUBSCRIBE / DELIVER / RECV-ACK
//   queue manager <-> queue manager:  XFER (store-and-forward, riding
//   the reliable transport session — see src/transport/)
//
// Express messages live in memory only; recoverable messages are
// persisted to the node's disk store and survive a reboot — the
// property the Message Diverter's "non-delivery is detected and
// retried" guarantee rests on.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "sim/time.h"

namespace oftt::msmq {

enum class DeliveryMode : std::uint8_t { kExpress = 0, kRecoverable = 1 };

struct Message {
  std::uint64_t id = 0;  // globally unique: (src_node << 48) | seq
  int src_node = -1;
  std::string queue;  // destination queue name
  std::string label;
  Buffer body;
  DeliveryMode mode = DeliveryMode::kExpress;
  sim::SimTime enqueued_at = 0;

  void marshal(BinaryWriter& w) const {
    w.u64(id);
    w.i32(src_node);
    w.str(queue);
    w.str(label);
    w.blob(body);
    w.u8(static_cast<std::uint8_t>(mode));
    w.i64(enqueued_at);
  }
  static Message unmarshal(BinaryReader& r) {
    Message m;
    m.id = r.u64();
    m.src_node = r.i32();
    m.queue = r.str();
    m.label = r.str();
    m.body = r.blob();
    m.mode = static_cast<DeliveryMode>(r.u8());
    m.enqueued_at = r.i64();
    return m;
  }
};

enum class MqPacket : std::uint8_t {
  kSend = 1,       // app -> local QM
  kSubscribe = 2,  // app -> local QM
  kDeliver = 3,    // QM -> app
  kRecvAck = 4,    // app -> QM
  kXfer = 5,       // QM -> QM (session-delivered)
  /// Retired: QM-to-QM acknowledgement now comes from the transport
  /// session's ack watermark. Value stays reserved so old captures and
  /// the transport kind-byte pin keep their meaning.
  kXferAck = 6,
};

/// Well-known queue-manager port on every node.
inline constexpr const char* kMsmqPort = "msmq";
/// Name of the local dead-letter queue.
inline constexpr const char* kDeadLetterQueue = "DEADLETTER";

}  // namespace oftt::msmq
