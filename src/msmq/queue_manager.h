// QueueManager: the per-node MSMQ service. Runs inside its own process
// ("msmq") so middleware failure can be injected against it.
//
// Responsibilities:
//   * local queues: arrival storage, subscriber delivery with
//     redelivery until the app acks (at-least-once to the app; the
//     arrival path QM->QM is exactly-once via the transport session,
//     belt-and-braces message-id dedup on top);
//   * outgoing store-and-forward: QM-to-QM transfers ride a reliable
//     transport session (retransmission with backoff replaced the old
//     fixed-period retry sweep); a route change cancels the in-flight
//     frame and re-dispatches to the new destination (the hook the
//     Message Diverter uses to chase the current primary);
//   * dead-lettering when a message exhausts its time-to-reach-queue;
//   * persistence of recoverable messages to the node's disk.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "msmq/message.h"
#include "obs/metrics.h"
#include "sim/disk.h"
#include "sim/node.h"
#include "sim/timer.h"
#include "transport/session.h"

namespace oftt::msmq {

struct QueueManagerConfig {
  /// Per-queue quota (messages); arrivals beyond it are rejected and
  /// counted, like an MSMQ quota-full queue. 0 = unlimited.
  std::size_t queue_quota = 0;
  sim::SimTime redelivery_timeout = sim::milliseconds(500);
  sim::SimTime time_to_reach_queue = sim::seconds(30);  // then dead-letter
  int preferred_network = 0;
};

class QueueManager {
 public:
  explicit QueueManager(sim::Process& process);

  /// Find the QM service on a node; null while the service is down.
  static QueueManager* find(sim::Node& node);

  /// Start the "msmq" service process on a node.
  static std::shared_ptr<sim::Process> install(sim::Node& node);

  QueueManagerConfig& config() { return config_; }

  // --- routing control plane (used by the Message Diverter) ---

  /// Route `queue` to a node's QM; -1 clears (queue becomes local).
  void set_route(const std::string& queue, int node);
  int route(const std::string& queue) const;

  // --- introspection ---
  std::size_t local_depth(const std::string& queue) const;
  std::size_t outgoing_depth() const;
  std::size_t dead_letter_count() const { return local_depth(kDeadLetterQueue); }
  /// Total QM-to-QM frame transmissions (first sends + retransmits).
  std::uint64_t transmits() const { return ep_->data_sent() + ep_->retransmits(); }
  /// Retransmissions the session layer performed on our behalf.
  std::uint64_t retries() const { return ep_->retransmits(); }
  /// Transfers suppressed as duplicates: by the session's sequence check
  /// (lost acks) plus the message-id dedup (session resets, reroutes).
  std::uint64_t duplicates_dropped() const {
    return duplicates_dropped_ + ep_->duplicate_frames();
  }
  std::uint64_t quota_rejections() const { return quota_rejections_; }

  /// Administrative purge of a local queue; returns messages removed.
  std::size_t purge(const std::string& queue);

 private:
  friend class MsmqApi;

  struct Subscriber {
    int node = -1;          // always local node; kept for clarity
    std::string port;       // app-side delivery port
    bool active = false;
  };
  struct InFlightDelivery {
    Message msg;
    sim::SimTime delivered_at;
  };
  struct LocalQueue {
    std::deque<Message> ready;
    std::map<std::uint64_t, InFlightDelivery> unacked;  // delivery tag = msg id
    Subscriber subscriber;
    std::set<std::uint64_t> seen_ids;  // dedup of QM->QM transfers
  };
  struct OutgoingEntry {
    Message msg;
    sim::SimTime first_attempt = 0;
    /// Node the transfer is currently dispatched to on the session
    /// (tagged with the message id); -1 = not dispatched yet.
    int dispatched_to = -1;
  };

  void on_datagram(const sim::Datagram& d);
  void handle_send(BinaryReader& r);
  void handle_subscribe(BinaryReader& r);
  void handle_recv_ack(BinaryReader& r);
  void handle_xfer(BinaryReader& r);

  void accept_local(Message msg);
  void pump_queue(const std::string& queue);
  /// Resolve the route and hand the transfer to the session (or deliver
  /// locally when the route points home). Arms the TTL dead-letter
  /// deadline on first dispatch.
  void dispatch_entry(std::uint64_t id);
  /// Peer acked the transfer: the entry's job is done.
  void complete_entry(std::uint64_t id);
  void dead_letter_entry(std::uint64_t id);
  void persist_queue(const std::string& queue);
  void persist_outgoing();
  void restore_from_disk();
  LocalQueue& queue_ref(const std::string& queue) { return queues_[queue]; }

  sim::Process* process_;
  QueueManagerConfig config_;
  std::map<std::string, LocalQueue> queues_;
  std::map<std::uint64_t, OutgoingEntry> outgoing_;  // by message id
  std::map<std::string, int> routes_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t duplicates_dropped_ = 0;
  std::uint64_t quota_rejections_ = 0;
  /// Reliable QM-to-QM sessions: transfers are tagged with the message
  /// id so a route change can cancel the in-flight frame by id and the
  /// ack callback can retire exactly the right outgoing entry.
  std::unique_ptr<transport::Endpoint> ep_;
  // Pre-resolved metric handles (shared cells across all QM instances);
  // the outgoing-depth gauge is per-process state.
  obs::Counter ctr_bad_packet_;
  obs::Counter ctr_quota_rejected_;
  obs::Counter ctr_dead_lettered_;
  obs::Gauge outgoing_depth_gauge_;
  sim::PeriodicTimer redelivery_timer_;
};

/// Per-application MSMQ client library (attachment on the app process).
class MsmqApi {
 public:
  explicit MsmqApi(sim::Process& process);

  static MsmqApi& of(sim::Process& process) { return process.attachment<MsmqApi>(process); }

  /// Enqueue for the (possibly remote, diverter-routed) queue.
  void send(const std::string& queue, const std::string& label, Buffer body,
            DeliveryMode mode = DeliveryMode::kRecoverable);

  /// Receive pushed messages from the named local queue. The handler
  /// runs on the app's main strand; the receive is acked after the
  /// handler returns (so a crash mid-handler causes redelivery).
  void subscribe(const std::string& queue, std::function<void(const Message&)> handler);

 private:
  void on_deliver(const sim::Datagram& d);

  sim::Process* process_;
  std::string recv_port_;
  std::map<std::string, std::function<void(const Message&)>> handlers_;
};

}  // namespace oftt::msmq
