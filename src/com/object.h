// com::Object — the reusable implementation of IUnknown, playing the
// role ATL's CComObject played for the paper's authors: derive from
// Object<Self, IFoo, IBar> and the refcount + QueryInterface plumbing is
// done.
#pragma once

#include <cassert>

#include "com/unknown.h"

namespace oftt::com {

template <typename Derived, typename First, typename... Rest>
class Object : public First, public Rest... {
 public:
  HRESULT QueryInterface(REFIID iid, void** ppv) override {
    if (ppv == nullptr) return E_POINTER;
    *ppv = nullptr;
    if (iid == IUnknown::iid() || iid == First::iid()) {
      // IUnknown identity: always the first listed interface.
      *ppv = static_cast<First*>(this);
    } else {
      // Discarded fold result; with no Rest this is the literal `false`.
      static_cast<void>((try_cast<Rest>(iid, ppv) || ...));
    }
    if (*ppv == nullptr) return E_NOINTERFACE;
    AddRef();
    return S_OK;
  }

  ULONG AddRef() override { return ++refs_; }

  ULONG Release() override {
    assert(refs_ > 0);
    ULONG r = --refs_;
    if (r == 0) delete static_cast<Derived*>(this);
    return r;
  }

  ULONG ref_count() const { return refs_; }

  /// Construct a Derived and return it holding one reference.
  template <typename... Args>
  static ComPtr<Derived> create(Args&&... args) {
    return ComPtr<Derived>::attach(new Derived(std::forward<Args>(args)...));
  }

 protected:
  Object() = default;
  virtual ~Object() = default;

 private:
  template <typename I>
  bool try_cast(REFIID iid, void** ppv) {
    if (iid == I::iid()) {
      *ppv = static_cast<I*>(this);
      return true;
    }
    return false;
  }

  ULONG refs_ = 1;  // born with the creator's reference
};

}  // namespace oftt::com
