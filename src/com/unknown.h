// The COM ABI: IUnknown, interface ids, and the ComPtr smart pointer.
//
// OFTT's headline claim is that fault tolerance packaged *as COM
// components* drops into existing process-control applications; the
// toolkit therefore has to present the real COM shape — HRESULT
// returns, QueryInterface(REFIID, void**), manual refcounting behind
// RAII.
#pragma once

#include <cstdint>
#include <utility>

#include "common/guid.h"
#include "common/hresult.h"

namespace oftt::com {

using ULONG = std::uint32_t;
using REFIID = const Iid&;
using REFCLSID = const Clsid&;

/// Declares the static interface id inside an interface definition.
/// GUIDs are derived deterministically from the interface name.
#define OFTT_COM_INTERFACE_ID(Name)                                        \
  static ::oftt::com::REFIID iid() {                                       \
    static const ::oftt::Iid id = ::oftt::Guid::from_name("IID_" #Name);   \
    return id;                                                             \
  }

struct IUnknown {
  OFTT_COM_INTERFACE_ID(IUnknown)

  virtual HRESULT QueryInterface(REFIID iid, void** ppv) = 0;
  virtual ULONG AddRef() = 0;
  virtual ULONG Release() = 0;

 protected:
  // COM objects are destroyed via Release(), never via delete-through-
  // interface.
  ~IUnknown() = default;
};

/// RAII interface pointer with the usual COM conventions.
template <typename T>
class ComPtr {
 public:
  ComPtr() = default;
  ComPtr(std::nullptr_t) {}  // NOLINT

  /// Takes its own reference.
  explicit ComPtr(T* p) : p_(p) {
    if (p_) p_->AddRef();
  }

  ComPtr(const ComPtr& other) : p_(other.p_) {
    if (p_) p_->AddRef();
  }
  ComPtr(ComPtr&& other) noexcept : p_(std::exchange(other.p_, nullptr)) {}

  ComPtr& operator=(const ComPtr& other) {
    ComPtr(other).swap(*this);
    return *this;
  }
  ComPtr& operator=(ComPtr&& other) noexcept {
    ComPtr(std::move(other)).swap(*this);
    return *this;
  }
  ComPtr& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  ~ComPtr() { reset(); }

  /// Adopt an already-AddRef'd pointer (e.g. an out-param result).
  static ComPtr attach(T* p) {
    ComPtr c;
    c.p_ = p;
    return c;
  }
  /// Release ownership without dropping the reference.
  T* detach() { return std::exchange(p_, nullptr); }

  void reset() {
    if (T* p = std::exchange(p_, nullptr)) p->Release();
  }
  void swap(ComPtr& other) noexcept { std::swap(p_, other.p_); }

  T* get() const { return p_; }
  T* operator->() const { return p_; }
  T& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }
  bool operator==(const ComPtr& other) const { return p_ == other.p_; }

  /// Out-param helper: releases any held pointer, then hands out the
  /// slot for an AddRef'd result. `CoCreateInstance(..., ptr.put_void())`.
  T** put() {
    reset();
    return &p_;
  }
  void** put_void() { return reinterpret_cast<void**>(put()); }

  /// QueryInterface into a typed pointer.
  template <typename U>
  ComPtr<U> as() const {
    ComPtr<U> out;
    if (p_) p_->QueryInterface(U::iid(), out.put_void());
    return out;
  }

 private:
  T* p_ = nullptr;
};

}  // namespace oftt::com
