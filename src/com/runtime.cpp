#include "com/runtime.h"

#include "common/logging.h"

namespace oftt::com {

void ComRuntime::register_class(REFCLSID clsid, ComPtr<IClassFactory> factory,
                                const std::string& name) {
  classes_[clsid] = Entry{std::move(factory), name};
  OFTT_LOG_TRACE("com", "registered class ", name.empty() ? clsid.to_string() : name);
}

void ComRuntime::revoke_class(REFCLSID clsid) { classes_.erase(clsid); }

HRESULT ComRuntime::get_class_object(REFCLSID clsid, ComPtr<IClassFactory>& out) const {
  auto it = classes_.find(clsid);
  if (it == classes_.end()) return REGDB_E_CLASSNOTREG;
  out = it->second.factory;
  return S_OK;
}

HRESULT ComRuntime::create_instance(REFCLSID clsid, REFIID iid, void** ppv) const {
  if (ppv == nullptr) return E_POINTER;
  *ppv = nullptr;
  ComPtr<IClassFactory> factory;
  if (HRESULT hr = get_class_object(clsid, factory); FAILED(hr)) return hr;
  return factory->CreateInstance(iid, ppv);
}

std::string ComRuntime::class_name(REFCLSID clsid) const {
  auto it = classes_.find(clsid);
  return it == classes_.end() ? std::string() : it->second.name;
}

}  // namespace oftt::com
