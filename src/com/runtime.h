// ComRuntime: the per-process COM library state — class registry and
// activation (CoCreateInstance). The DCOM layer extends activation
// across nodes via the SCM service; this file is purely in-process.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "com/object.h"
#include "com/unknown.h"
#include "sim/process.h"

namespace oftt::com {

struct IClassFactory : IUnknown {
  OFTT_COM_INTERFACE_ID(IClassFactory)
  virtual HRESULT CreateInstance(REFIID iid, void** ppv) = 0;
};

/// Wrap a lambda as an IClassFactory.
class LambdaClassFactory final
    : public Object<LambdaClassFactory, IClassFactory> {
 public:
  using Fn = std::function<HRESULT(REFIID, void**)>;
  explicit LambdaClassFactory(Fn fn) : fn_(std::move(fn)) {}

  HRESULT CreateInstance(REFIID iid, void** ppv) override { return fn_(iid, ppv); }

 private:
  Fn fn_;
};

class ComRuntime {
 public:
  explicit ComRuntime(sim::Process& process) : process_(&process) {}

  sim::Process& process() { return *process_; }

  static ComRuntime& of(sim::Process& process) {
    return process.attachment<ComRuntime>(process);
  }

  /// Register a coclass in this process (in-proc server).
  void register_class(REFCLSID clsid, ComPtr<IClassFactory> factory,
                      const std::string& name = "");

  /// Convenience: register a coclass whose instances are `T::create(args...)`.
  template <typename T, typename... Args>
  void register_simple_class(REFCLSID clsid, Args... args) {
    auto factory = LambdaClassFactory::create(
        [args...](REFIID iid, void** ppv) -> HRESULT {
          auto obj = T::create(args...);
          return obj->QueryInterface(iid, ppv);
        });
    register_class(clsid, ComPtr<IClassFactory>(factory.get()));
  }

  void revoke_class(REFCLSID clsid);
  bool class_registered(REFCLSID clsid) const { return classes_.count(clsid) != 0; }

  HRESULT get_class_object(REFCLSID clsid, ComPtr<IClassFactory>& out) const;

  /// CoCreateInstance (in-process): activate clsid and QI to iid.
  HRESULT create_instance(REFCLSID clsid, REFIID iid, void** ppv) const;

  /// Debug name for a clsid, if registered with one.
  std::string class_name(REFCLSID clsid) const;

 private:
  struct Entry {
    ComPtr<IClassFactory> factory;
    std::string name;
  };
  sim::Process* process_;
  std::map<Clsid, Entry> classes_;
};

}  // namespace oftt::com
