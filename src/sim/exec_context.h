// Thread-local execution context for the parallel engine.
//
// When a Simulation runs under EngineKind::kParallel, each worker
// thread (and the coordinator, while it executes global events) carries
// one of these. Simulation::now() reads the context's clock instead of
// the shared now_, scheduling calls use the context to derive
// deterministic per-node event keys, and the obs/logging layers use the
// node id to stamp merge keys. A null context (or one belonging to a
// different Simulation — seed sweeps run whole sims per thread) means
// sequential semantics.
#pragma once

#include "sim/time.h"

namespace oftt::sim {

class Simulation;
class ParallelEngine;

namespace pdes {

struct ExecContext {
  Simulation* sim = nullptr;
  ParallelEngine* engine = nullptr;
  int shard = -1;  // -1 = coordinator
  int node = -1;   // node whose event is executing, -1 between events
  SimTime now = 0;
};

// Defined in parallel_engine.cpp.
extern thread_local ExecContext* tl_ctx;

}  // namespace pdes
}  // namespace oftt::sim
