#include "sim/simulation.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/logging.h"
#include "sim/parallel_engine.h"

namespace oftt::sim {

EngineConfig engine_config_from_env(EngineConfig def) {
  const char* kind = std::getenv("OFTT_ENGINE");
  if (kind != nullptr && std::strcmp(kind, "parallel") == 0) {
    def.kind = EngineKind::kParallel;
  } else if (kind != nullptr && std::strcmp(kind, "sequential") == 0) {
    def.kind = EngineKind::kSequential;
  }
  const char* workers = std::getenv("OFTT_ENGINE_WORKERS");
  if (workers != nullptr) {
    int w = std::atoi(workers);
    if (w >= 1) def.workers = w;
  }
  return def;
}

Simulation::Simulation(std::uint64_t seed)
    // The telemetry clock goes through now() (not now_): under the
    // parallel engine an event's publishes must stamp the worker's
    // thread-local clock, not the barrier-granularity shared one.
    : telemetry_([this] { return now(); }), rng_(seed) {}

Simulation::~Simulation() = default;

void Simulation::set_engine(const EngineConfig& config) {
  if (config.kind == EngineKind::kSequential) {
    if (engine_ != nullptr) {
      throw std::logic_error("Simulation::set_engine: cannot switch back to sequential");
    }
    engine_cfg_ = config;
    return;
  }
  if (!nodes_.empty() || !queue_.empty() || engine_ != nullptr) {
    throw std::logic_error(
        "Simulation::set_engine: select the parallel engine before adding nodes or "
        "scheduling events (shard queues own all routing)");
  }
  if (config.workers < 1) {
    throw std::invalid_argument("Simulation::set_engine: workers must be >= 1");
  }
  engine_cfg_ = config;
  engine_ = std::make_unique<ParallelEngine>(*this, config);
}

std::uint64_t Simulation::next_epoch() {
  const pdes::ExecContext* c = pdes::tl_ctx;
  if (engine_ != nullptr && c != nullptr && c->sim == this && c->node >= 0) {
    return ((static_cast<std::uint64_t>(c->node) + 1) << 40) |
           ++nodes_[static_cast<std::size_t>(c->node)]->pdes().epoch;
  }
  return next_epoch_++;
}

EventHandle Simulation::schedule_at(SimTime at, EventFn&& fn) {
  assert(at >= now());
  if (engine_ != nullptr) {
    return engine_->schedule(at < now() ? now() : at, nullptr, std::move(fn), /*node=*/-1);
  }
  return queue_.schedule(at < now_ ? now_ : at, std::move(fn));
}

EventHandle Simulation::schedule_on(SimTime at, LifeRef life, EventFn&& fn, int node) {
  if (engine_ != nullptr) {
    return engine_->schedule(at < now() ? now() : at, std::move(life), std::move(fn), node);
  }
  // The liveness gate is a native slot field in the queue (checked at
  // pop), not a wrapper lambda — no extra allocation per strand event.
  return queue_.schedule_on(at < now_ ? now_ : at, std::move(life), std::move(fn));
}

Node& Simulation::add_node(const std::string& name) {
  nodes_.push_back(std::make_unique<Node>(*this, name, static_cast<int>(nodes_.size())));
  if (engine_ != nullptr) engine_->on_add_node(nodes_.back()->id());
  return *nodes_.back();
}

Node* Simulation::find_node(const std::string& name) {
  for (auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

Network& Simulation::add_network(const std::string& name) {
  networks_.push_back(
      std::make_unique<Network>(*this, name, static_cast<int>(networks_.size())));
  return *networks_.back();
}

bool Simulation::step() {
  if (engine_ != nullptr) return engine_->step();
  if (queue_.empty()) return false;
  EventFn fn;
  SimTime at = queue_.pop(fn);
  assert(at >= now_);
  now_ = at;
  // An empty callback means the event's strand died or hung before fire
  // time: the tick still advances the clock, but there is nothing to run.
  if (fn) fn();
  return true;
}

void Simulation::run_until(SimTime t) {
  if (engine_ != nullptr) {
    engine_->run_until(t);
    return;
  }
  while (!queue_.empty() && queue_.next_time() <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulation::run(std::uint64_t max_events) {
  if (engine_ != nullptr) {
    engine_->run(max_events);
    return;
  }
  std::uint64_t n = 0;
  while (step()) {
    if (++n >= max_events) {
      OFTT_LOG_ERROR("sim", "run(): event budget exhausted (", max_events, ") — runaway loop?");
      return;
    }
  }
}

}  // namespace oftt::sim
