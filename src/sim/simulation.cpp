#include "sim/simulation.h"

#include <cassert>

#include "common/logging.h"

namespace oftt::sim {

Simulation::Simulation(std::uint64_t seed)
    : telemetry_([this] { return now_; }), rng_(seed) {}

Simulation::~Simulation() = default;

EventHandle Simulation::schedule_at(SimTime at, EventFn&& fn) {
  assert(at >= now_);
  return queue_.schedule(at < now_ ? now_ : at, std::move(fn));
}

EventHandle Simulation::schedule_on(SimTime at, LifeRef life, EventFn&& fn) {
  // The liveness gate is a native slot field in the queue (checked at
  // pop), not a wrapper lambda — no extra allocation per strand event.
  return queue_.schedule_on(at < now_ ? now_ : at, std::move(life), std::move(fn));
}

Node& Simulation::add_node(const std::string& name) {
  nodes_.push_back(std::make_unique<Node>(*this, name, static_cast<int>(nodes_.size())));
  return *nodes_.back();
}

Node* Simulation::find_node(const std::string& name) {
  for (auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

Network& Simulation::add_network(const std::string& name) {
  networks_.push_back(
      std::make_unique<Network>(*this, name, static_cast<int>(networks_.size())));
  return *networks_.back();
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  EventFn fn;
  SimTime at = queue_.pop(fn);
  assert(at >= now_);
  now_ = at;
  // An empty callback means the event's strand died or hung before fire
  // time: the tick still advances the clock, but there is nothing to run.
  if (fn) fn();
  return true;
}

void Simulation::run_until(SimTime t) {
  while (!queue_.empty() && queue_.next_time() <= t) {
    step();
  }
  if (now_ < t) now_ = t;
}

void Simulation::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n >= max_events) {
      OFTT_LOG_ERROR("sim", "run(): event budget exhausted (", max_events, ") — runaway loop?");
      return;
    }
  }
}

}  // namespace oftt::sim
