#include "sim/node.h"

#include "common/logging.h"
#include "common/strings.h"
#include "sim/simulation.h"

namespace oftt::sim {

Node::Node(Simulation& sim, std::string name, int id)
    : sim_(sim),
      name_(std::move(name)),
      id_(id),
      ctr_deliver_down_(sim.telemetry().metrics().counter("node.deliver_down")),
      ctr_deliver_no_port_(sim.telemetry().metrics().counter("node.deliver_no_port")),
      ctr_deliver_dead_strand_(sim.telemetry().metrics().counter("node.deliver_dead_strand")) {}

void Node::boot() {
  if (up_) return;
  up_ = true;
  ++boot_count_;
  last_failure_ = NodeFailureKind::kNone;
  OFTT_LOG_INFO("sim/node", name_, " booted (boot #", boot_count_, ")");
  {
    obs::Event e;
    e.kind = obs::EventKind::kNodeUp;
    e.node = id_;
    e.a = static_cast<std::uint64_t>(boot_count_);
    sim_.telemetry().bus().publish(std::move(e));
  }
  if (boot_script_) boot_script_(*this);
}

void Node::crash() {
  if (!up_) return;
  OFTT_LOG_WARN("sim/node", name_, " POWER FAILURE");
  last_failure_ = NodeFailureKind::kPowerFailure;
  publish_down("power failure");
  kill_all_processes("node power failure");
  up_ = false;
  ports_.clear();
}

void Node::os_crash(SimTime reboot_after) {
  if (!up_) return;
  OFTT_LOG_WARN("sim/node", name_, " NT CRASH (blue screen)");
  last_failure_ = NodeFailureKind::kOsCrash;
  publish_down("NT crash (blue screen)");
  kill_all_processes("NT crash");
  up_ = false;
  ports_.clear();
  if (reboot_after != kNever) reboot(reboot_after);
}

void Node::publish_down(const char* why) {
  obs::Event e;
  e.kind = obs::EventKind::kNodeDown;
  e.node = id_;
  e.detail = why;
  e.a = static_cast<std::uint64_t>(last_failure_);
  sim_.telemetry().bus().publish(std::move(e));
}

void Node::reboot(SimTime delay) {
  sim_.schedule_after(delay, [this] { boot(); });
}

void Node::kill_all_processes(const std::string& reason) {
  // Copy: exit listeners may look up processes.
  auto procs = processes_;
  for (auto& [pname, proc] : procs) proc->kill(reason);
  processes_.clear();
}

std::shared_ptr<Process> Node::start_process(const std::string& pname, Process::Factory factory) {
  if (!up_) {
    OFTT_LOG_WARN("sim/node", name_, ": cannot start ", pname, " while down");
    return nullptr;
  }
  factories_[pname] = factory;
  auto proc = std::make_shared<Process>(*this, pname, next_pid_++);
  processes_[pname] = proc;
  OFTT_LOG_DEBUG("sim/node", name_, " started process ", pname, " pid=", proc->pid());
  if (factory) factory(*proc);
  return proc;
}

std::shared_ptr<Process> Node::restart_process(const std::string& pname) {
  auto it = factories_.find(pname);
  if (it == factories_.end() || !up_) return nullptr;
  if (auto existing = find_process(pname); existing && existing->alive()) {
    existing->kill("restart");
  }
  processes_.erase(pname);
  return start_process(pname, it->second);
}

std::shared_ptr<Process> Node::find_process(const std::string& pname) {
  auto it = processes_.find(pname);
  return it == processes_.end() ? nullptr : it->second;
}

std::vector<std::string> Node::process_names() const {
  std::vector<std::string> out;
  out.reserve(processes_.size());
  for (const auto& [pname, _] : processes_) out.push_back(pname);
  return out;
}

void Node::bind_port(const std::string& port, LifeRef life, MessageHandler h) {
  ports_[port] = PortEntry{std::move(life), std::move(h)};
}

void Node::unbind_port(const std::string& port) { ports_.erase(port); }

bool Node::port_bound(const std::string& port) const { return ports_.count(port) != 0; }

void Node::deliver(const Datagram& d) {
  if (!up_) {
    ctr_deliver_down_.inc();
    return;
  }
  auto it = ports_.find(d.dst_port);
  if (it == ports_.end()) {
    ctr_deliver_no_port_.inc();
    OFTT_LOG_TRACE("sim/node", name_, ": no listener on port '", d.dst_port, "'");
    return;
  }
  if (!it->second.life->runnable()) {
    ctr_deliver_dead_strand_.inc();
    return;
  }
  // Copy the handler: it may unbind (erase) itself during execution.
  auto handler = it->second.handler;
  handler(d);
}

}  // namespace oftt::sim
