// Datagram: the unit of network delivery. All higher protocols (ORPC,
// MSMQ, OFTT heartbeats and checkpoints) are framed inside datagram
// payloads. Delivery is best-effort — loss, partition and node death
// silently drop datagrams, and reliability is the *protocol's* problem,
// exactly as on the paper's Ethernet.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"

namespace oftt::sim {

struct Datagram {
  int network_id = -1;
  int src_node = -1;
  std::string src_port;
  int dst_node = -1;
  std::string dst_port;
  Buffer payload;
};

using MessageHandler = std::function<void(const Datagram&)>;

}  // namespace oftt::sim
