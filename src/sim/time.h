// Virtual time for the discrete-event simulation. All durations in the
// repo are SimTime nanoseconds; helpers build readable literals.
#pragma once

#include <cstdint>

namespace oftt::sim {

using SimTime = std::int64_t;  // nanoseconds since simulation start

constexpr SimTime kNever = INT64_MAX;

constexpr SimTime nanoseconds(std::int64_t n) { return n; }
constexpr SimTime microseconds(std::int64_t n) { return n * 1'000; }
constexpr SimTime milliseconds(std::int64_t n) { return n * 1'000'000; }
constexpr SimTime seconds(std::int64_t n) { return n * 1'000'000'000; }
constexpr SimTime minutes(std::int64_t n) { return n * 60'000'000'000; }

constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace oftt::sim
