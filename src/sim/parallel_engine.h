// ParallelEngine: conservative parallel discrete-event execution with a
// byte-identical determinism contract.
//
// Nodes are partitioned across worker threads (src/sim/partition.h);
// each worker owns one slab-pooled EventQueue shard holding exactly its
// nodes' events. Execution alternates between
//
//   windows   — all workers run their shards' events with
//               at < window_end concurrently, and
//   barriers  — the coordinator (the thread that called run_until)
//               drains cross-partition mailboxes, replays deferred
//               telemetry/log records in deterministic merge order,
//               and executes due *global* events (fault injectors,
//               harness drivers — anything scheduled outside a node
//               context) while every worker is parked, since a global
//               event may touch any node.
//
// The window end is the classic bounded-lag horizon:
//
//   window_end = min(next global event,
//                    min over all pending node events + lookahead,
//                    run limit + 1)
//
// where lookahead = min over networks of latency_min_. Every
// cross-node interaction goes through a Network link, so an event
// executing at time t can only influence another node at t + lookahead
// or later — which is >= window_end by construction. Cross-partition
// deliveries therefore never target the current window and can ride
// bounded SPSC mailboxes (src/sim/mailbox.h) drained at the barrier.
// A zero latency_min_ would make windows empty and deadlock progress;
// the engine refuses to run (std::runtime_error naming the network).
//
// Determinism. Every quantity that decides *what happens* is a pure
// function of the event history, never of the partition:
//   - window boundaries derive from global minima over all nodes'
//     events — identical for any worker count;
//   - event tie-break keys are ((node + 1) << 40) | node_counter,
//     allocated from the scheduling node's own monotone counter, so a
//     shard queue's (time, key) pop order — the same key discipline
//     the sequential kernel uses — is independent of arrival order;
//   - network rng draws come from per-source-node substreams forked
//     from the seed (Network::send switches off its shared stream in
//     parallel mode), so partitioning never changes draws;
//   - telemetry publishes and log lines are buffered per worker with
//     (time, node-key) merge keys and replayed in sorted order at the
//     barrier.
// The pinned determinism contract (tests/pdes/) is: identical event
// histories, telemetry streams and logs for 1, 2 and 4 workers — with
// the one-worker engine executing in strict global timestamp order,
// i.e. sequentially.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"
#include "sim/exec_context.h"
#include "sim/mailbox.h"
#include "sim/partition.h"
#include "sim/time.h"

namespace oftt::sim {

class Simulation;
struct EngineConfig;

class ParallelEngine {
 public:
  ParallelEngine(Simulation& sim, const EngineConfig& config);
  ~ParallelEngine();

  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  int workers() const { return workers_; }
  int shard_of(int node) const { return partition_.shard_of(node); }
  SimTime lookahead() const { return lookahead_; }

  /// Simulation::add_node hook: record the node's shard.
  void on_add_node(int node);

  /// All Simulation scheduling funnels here. `node` >= 0 targets that
  /// node (strand events, reboots); -1 means "the scheduling context's
  /// node, or the global queue when called outside any node context".
  EventHandle schedule(SimTime at, LifeRef life, EventFn&& fn, int node);

  /// Cross-node delivery (Network), stamped with send-time semantics:
  /// the tie-break key comes from the *sending* node's counter, taken
  /// now, so reconstruction at the destination is order-independent.
  void post_send(int src_node, int dst_node, SimTime at, EventFn&& fn);

  bool step();
  void run_until(SimTime t);
  void run(std::uint64_t max_events);
  bool empty() const;

  // --- introspection (tests, benches, monitor board) -----------------
  std::uint64_t windows() const { return windows_; }
  std::uint64_t events_executed() const;
  std::uint64_t worker_events(int w) const;
  std::uint64_t mailbox_spills() const;
  std::size_t mailbox_peak() const;
  /// Total wall-clock ns workers spent parked at barriers.
  std::uint64_t stall_ns() const;

 private:
  struct BusItem {
    std::uint64_t key = 0;
    obs::Event e;
  };

  /// One worker's world: its event queue, executed-count, and the
  /// deferred telemetry/log buffers flushed at each barrier. Plain
  /// (non-atomic) fields are fine: within a window only the owning
  /// worker touches them, and the barrier mutex orders the coordinator's
  /// reads against the worker's writes.
  struct alignas(64) Shard {
    EventQueue q;
    std::uint64_t executed = 0;
    /// Wall-clock ns this worker spent executing in the last window;
    /// the coordinator subtracts it from the window's wall time to get
    /// the horizon-stall contribution.
    std::uint64_t window_exec_ns = 0;
    std::vector<BusItem> bus_buf;
    std::vector<LogRecord> log_buf;
    std::thread thread;
  };

  std::uint64_t make_key(int origin_node);
  SpscMailbox& mailbox(int src_shard, int dst_shard) {
    return *mailboxes_[static_cast<std::size_t>(src_shard) * static_cast<std::size_t>(workers_) +
                       static_cast<std::size_t>(dst_shard)];
  }

  void start_run();
  /// Core loop: run events with time <= t (kNever = drain), stopping
  /// after the first window/global event when `once`, or once `budget`
  /// events have executed.
  void advance(SimTime t, std::uint64_t budget, bool once, bool& ran_any);
  void run_window(SimTime end);
  void flush_barrier();
  void worker_main(int w);
  SimTime shard_min();
  SimTime global_next();

  Simulation& sim_;
  Partition partition_;
  int workers_ = 1;
  std::size_t mailbox_capacity_ = 1024;
  SimTime lookahead_ = kNever;
  bool started_ = false;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<SpscMailbox>> mailboxes_;

  // Barrier state (coordinator <-> workers).
  std::mutex mu_;
  std::condition_variable cv_workers_;
  std::condition_variable cv_coord_;
  std::uint64_t round_ = 0;
  SimTime window_end_ = 0;
  int running_ = 0;
  bool shutdown_ = false;

  std::uint64_t windows_ = 0;
  std::uint64_t global_executed_ = 0;
  std::uint64_t spills_reported_ = 0;
  std::uint64_t stall_ns_ = 0;

  // Scratch for the barrier merges (reused across windows).
  std::vector<BusItem> bus_merge_;
  std::vector<LogRecord> log_merge_;

  // oftt.pdes.* metrics.
  obs::Counter ctr_windows_;
  obs::Counter ctr_events_;
  obs::Counter ctr_spills_;
  obs::Gauge g_stall_ns_;
  obs::Gauge g_mailbox_peak_;
  std::vector<obs::Gauge> g_worker_events_;
};

}  // namespace oftt::sim
