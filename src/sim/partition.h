// Node -> shard assignment for the conservative parallel engine.
//
// A partition is fixed for the life of a Simulation (nodes are assigned
// a shard as they are added) and must be a pure function of the node id
// and the shard count: the engine's determinism contract says the event
// history is identical for any worker count, so nothing about *where* a
// node executes may leak into *what* it computes. The partition only
// decides load balance.
#pragma once

namespace oftt::sim {

enum class PartitionStrategy {
  /// node % shards. Spreads consecutively-numbered replicas (the way
  /// every deployment numbers them) evenly — the right default for
  /// homogeneous fleets like the SWIM N=512 scenario.
  kRoundRobin,
  /// (node / 8) % shards: blocks of 8 consecutive nodes per shard.
  /// Keeps chatty neighbours (a redundant pair + its test PC) on one
  /// worker at the cost of coarser balance.
  kBlocked,
};

struct Partition {
  int shards = 1;
  PartitionStrategy strategy = PartitionStrategy::kRoundRobin;

  int shard_of(int node) const {
    if (shards <= 1 || node < 0) return 0;
    switch (strategy) {
      case PartitionStrategy::kBlocked: return (node / 8) % shards;
      case PartitionStrategy::kRoundRobin: break;
    }
    return node % shards;
  }
};

}  // namespace oftt::sim
