#include "sim/network.h"

#include <algorithm>
#include <stdexcept>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/parallel_engine.h"
#include "sim/simulation.h"

namespace oftt::sim {

int pick_network(Simulation& sim, int a, int b) {
  if (a == b) return 0;  // loopback; Process::send short-circuits anyway
  for (std::size_t i = 0; i < sim.network_count(); ++i) {
    auto& net = sim.network(static_cast<int>(i));
    if (net.attached(a) && net.attached(b)) return static_cast<int>(i);
  }
  return -1;
}

Network::Network(Simulation& sim, std::string name, int id)
    : sim_(sim),
      name_(std::move(name)),
      id_(id),
      rng_(sim.fork_rng(cat("net:", name_))),
      ctr_unreachable_(sim.telemetry().metrics().counter(cat(name_, ".unreachable"))),
      ctr_lost_(sim.telemetry().metrics().counter(cat(name_, ".lost"))),
      ctr_duplicated_(sim.telemetry().metrics().counter(cat(name_, ".duplicated"))),
      payload_bytes_(sim.telemetry().metrics().histogram(
          "net.payload_bytes", {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576})) {}

void Network::set_latency(SimTime min, SimTime max) {
  if (max < min) {
    throw std::invalid_argument(cat("Network::set_latency('", name_, "'): max (", max,
                                    " ns) < min (", min, " ns) — arguments swapped?"));
  }
  if (min < 0) {
    throw std::invalid_argument(
        cat("Network::set_latency('", name_, "'): negative min (", min, " ns)"));
  }
  latency_min_ = min;
  latency_max_ = max;
}

void Network::prepare_parallel(std::size_t node_count) {
  while (node_rng_.size() < node_count) {
    node_rng_.push_back(sim_.fork_rng(cat("net:", name_, "#", node_rng_.size())));
  }
  if (node_burst_bad_.size() < node_count) node_burst_bad_.resize(node_count, 0);
}

void Network::set_link(int a, int b, bool up) {
  auto key = std::minmax(a, b);
  if (up) {
    dead_links_.erase({key.first, key.second});
  } else {
    dead_links_.insert({key.first, key.second});
  }
}

bool Network::link_up(int a, int b) const {
  auto key = std::minmax(a, b);
  return dead_links_.count({key.first, key.second}) == 0;
}

void Network::set_burst_loss(double p_enter, double p_exit, double loss_good, double loss_bad) {
  burst_.enabled = true;
  burst_.p_enter = p_enter;
  burst_.p_exit = p_exit <= 0.0 ? 1.0 : p_exit;  // a burst must be escapable
  burst_.loss_good = loss_good;
  burst_.loss_bad = loss_bad;
}

void Network::clear_burst_loss() {
  burst_ = BurstLoss{};
  std::fill(node_burst_bad_.begin(), node_burst_bad_.end(), 0);
}

bool Network::burst_drop(Rng& rng, bool& bad) {
  // One chain step per send attempt: transition draw first, then the
  // state's loss draw. Disabled channels make no rng draws at all, so
  // enabling burst loss mid-run never perturbs earlier history.
  if (bad) {
    if (rng.chance(burst_.p_exit)) bad = false;
  } else {
    if (rng.chance(burst_.p_enter)) bad = true;
  }
  double loss = bad ? burst_.loss_bad : burst_.loss_good;
  return loss > 0.0 && rng.chance(loss);
}

void Network::partition(std::vector<std::vector<int>> groups) {
  partition_group_.clear();
  int g = 0;
  for (const auto& group : groups) {
    for (int node : group) partition_group_[node] = g;
    ++g;
  }
}

void Network::heal() {
  partition_group_.clear();
  dead_links_.clear();
  down_ = false;
}

bool Network::reachable(int a, int b) const {
  if (down_) return false;
  if (!link_up(a, b)) return false;
  if (!partition_group_.empty()) {
    auto ia = partition_group_.find(a);
    auto ib = partition_group_.find(b);
    // Nodes not named in the partition spec are isolated from everyone.
    if (ia == partition_group_.end() || ib == partition_group_.end()) return false;
    if (ia->second != ib->second) return false;
  }
  return true;
}

bool Network::send(Datagram d) {
  if (!attached(d.src_node)) return false;
  sent_.fetch_add(1, std::memory_order_relaxed);
  bytes_sent_.fetch_add(d.payload.size(), std::memory_order_relaxed);
  payload_bytes_.record(static_cast<std::int64_t>(d.payload.size()));
  if (!attached(d.dst_node) || !reachable(d.src_node, d.dst_node)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    ctr_unreachable_.inc();
    return true;  // datagram silently lost in the fabric
  }
  // Parallel mode draws from the source node's own substream (and
  // advances the source node's burst chain) so concurrent sends from
  // different nodes never race — and never perturb — each other's draw
  // sequences. The draw *order within one send* is identical in both
  // modes: loss, burst transition + state loss, duplication, latency
  // per copy.
  ParallelEngine* engine = sim_.parallel_engine();
  const bool parallel = engine != nullptr;
  const auto src = static_cast<std::size_t>(d.src_node);
  if (parallel && node_rng_.size() <= src) prepare_parallel(sim_.node_count());
  Rng& rng = parallel ? node_rng_[src] : rng_;
  if (loss_ > 0.0 && rng.chance(loss_)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    ctr_lost_.inc();
    return true;
  }
  if (burst_.enabled) {
    bool drop;
    if (parallel) {
      bool bad = node_burst_bad_[src] != 0;
      drop = burst_drop(rng, bad);
      node_burst_bad_[src] = bad ? 1 : 0;
    } else {
      drop = burst_drop(rng, burst_.bad);
    }
    if (drop) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      burst_dropped_.fetch_add(1, std::memory_order_relaxed);
      ctr_lost_.inc();
      return true;
    }
  }
  int copies = 1;
  if (dup_ > 0.0 && rng.chance(dup_)) {
    ++copies;
    duplicated_.fetch_add(1, std::memory_order_relaxed);
    ctr_duplicated_.inc();
  }
  SimTime serialization = 0;
  if (bandwidth_ > 0.0) {
    serialization =
        static_cast<SimTime>(static_cast<double>(d.payload.size()) / bandwidth_ * 1e9);
  }
  int dst = d.dst_node;
  for (int i = 0; i < copies; ++i) {
    // Each copy draws its own latency, so a duplicate can overtake the
    // original — the nastier of the two orderings for receivers.
    SimTime latency = latency_min_ == latency_max_
                          ? latency_min_
                          : latency_min_ + rng.uniform(0, latency_max_ - latency_min_);
    latency += serialization;
    if (parallel) {
      // Cross-shard delivery: keyed with the sender's counter at send
      // time, routed through the engine (mailbox if the destination
      // lives on another worker).
      engine->post_send(d.src_node, dst, sim_.now() + latency, [this, dst, dgram = d] {
        delivered_.fetch_add(1, std::memory_order_relaxed);
        sim_.node(dst).deliver(dgram);
      });
    } else {
      sim_.schedule_after(latency, [this, dst, dgram = d] {
        delivered_.fetch_add(1, std::memory_order_relaxed);
        sim_.node(dst).deliver(dgram);
      });
    }
  }
  return true;
}

}  // namespace oftt::sim
