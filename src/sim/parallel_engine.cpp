#include "sim/parallel_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/simulation.h"

namespace oftt::sim {

namespace pdes {
thread_local ExecContext* tl_ctx = nullptr;
}  // namespace pdes

namespace {

/// m + L without overflowing past kNever (both operands can be kNever).
SimTime sat_add(SimTime a, SimTime b) {
  if (a >= kNever - b) return kNever;
  return a + b;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - since)
                                        .count());
}

}  // namespace

ParallelEngine::ParallelEngine(Simulation& sim, const EngineConfig& config)
    : sim_(sim),
      partition_{config.workers, config.partition},
      workers_(config.workers),
      mailbox_capacity_(config.mailbox_capacity == 0 ? 8 : config.mailbox_capacity) {
  shards_.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) shards_.push_back(std::make_unique<Shard>());
  mailboxes_.reserve(static_cast<std::size_t>(workers_) * static_cast<std::size_t>(workers_));
  for (int i = 0; i < workers_ * workers_; ++i) {
    mailboxes_.push_back(std::make_unique<SpscMailbox>(mailbox_capacity_));
  }

  obs::MetricsRegistry& mx = sim_.telemetry().metrics();
  ctr_windows_ = mx.counter("oftt.pdes.windows");
  ctr_events_ = mx.counter("oftt.pdes.events");
  ctr_spills_ = mx.counter("oftt.pdes.mailbox_spills");
  g_stall_ns_ = mx.gauge("oftt.pdes.stall_ns");
  g_mailbox_peak_ = mx.gauge("oftt.pdes.mailbox_peak");
  g_worker_events_.reserve(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; ++w) {
    g_worker_events_.push_back(mx.gauge(cat("oftt.pdes.w", w, ".events")));
  }

  // Worker-context publishes are captured into the worker's buffer with
  // a (node, pub_seq) merge key and replayed at the barrier; everything
  // else (coordinator, setup, other sims on this thread) dispatches
  // immediately as before.
  sim_.telemetry().bus().set_defer([this](obs::Event& e) {
    pdes::ExecContext* c = pdes::tl_ctx;
    if (c == nullptr || c->engine != this || c->shard < 0 || c->node < 0) return false;
    Shard& sh = *shards_[static_cast<std::size_t>(c->shard)];
    const std::uint64_t key =
        ((static_cast<std::uint64_t>(c->node) + 1) << 40) |
        ++sim_.nodes_[static_cast<std::size_t>(c->node)]->pdes().pub_seq;
    sh.bus_buf.push_back(BusItem{key, std::move(e)});
    return true;
  });
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_workers_.notify_all();
  for (auto& sh : shards_) {
    if (sh->thread.joinable()) sh->thread.join();
  }
  sim_.telemetry().bus().set_defer(nullptr);
}

void ParallelEngine::on_add_node(int node) {
  (void)node;
  pdes::ExecContext* c = pdes::tl_ctx;
  if (c != nullptr && c->engine == this && c->shard >= 0) {
    throw std::logic_error("ParallelEngine: add_node from a worker context is not supported");
  }
}

std::uint64_t ParallelEngine::make_key(int origin_node) {
  Node& n = *sim_.nodes_[static_cast<std::size_t>(origin_node)];
  return ((static_cast<std::uint64_t>(origin_node) + 1) << 40) | ++n.pdes().sched_seq;
}

EventHandle ParallelEngine::schedule(SimTime at, LifeRef life, EventFn&& fn, int node) {
  pdes::ExecContext* c = pdes::tl_ctx;
  if (c != nullptr && c->sim == &sim_ && c->shard >= 0) {
    // Worker context. Events stay on the executing node: a strand only
    // schedules onto its own node (cross-node influence goes through
    // Network::send -> post_send), which keeps both the key origin and
    // the shard routing invariant under the worker count.
    const int origin = c->node;
    assert(origin >= 0 && "worker-context scheduling requires a node context");
    assert((node < 0 || node == origin) &&
           "cross-node scheduling must go through the network (post_send)");
    return shards_[static_cast<std::size_t>(c->shard)]->q.schedule_keyed(
        at, make_key(origin), static_cast<std::uint32_t>(origin), std::move(life),
        std::move(fn));
  }
  // Coordinator or setup context: workers are parked, every queue and
  // node counter is safe to touch.
  if (node >= 0) {
    return shards_[static_cast<std::size_t>(shard_of(node))]->q.schedule_keyed(
        at, make_key(node), static_cast<std::uint32_t>(node), std::move(life), std::move(fn));
  }
  // No node context at all: a global event (fault injector, harness).
  return sim_.queue_.schedule_on(at, std::move(life), std::move(fn));
}

void ParallelEngine::post_send(int src_node, int dst_node, SimTime at, EventFn&& fn) {
  // Send-time key semantics: the key comes from the sender's counter,
  // allocated now, so however many workers there are the destination
  // queue reconstructs the identical (time, key) order.
  const std::uint64_t key = make_key(src_node);
  const int dst_shard = shard_of(dst_node);
  pdes::ExecContext* c = pdes::tl_ctx;
  if (c != nullptr && c->sim == &sim_ && c->shard >= 0) {
    assert(c->node == src_node && "post_send must run in the sending node's context");
    if (dst_shard != c->shard) {
      // Conservative lookahead guarantees `at` lands at or beyond the
      // current window's end, so the delivery can ride the mailbox and
      // be inserted at the barrier.
      mailbox(c->shard, dst_shard)
          .push(CrossEvent{at, key, static_cast<std::uint32_t>(dst_node), std::move(fn)});
      return;
    }
  }
  shards_[static_cast<std::size_t>(dst_shard)]->q.schedule_keyed(
      at, key, static_cast<std::uint32_t>(dst_node), nullptr, std::move(fn));
}

SimTime ParallelEngine::shard_min() {
  SimTime m = kNever;
  for (auto& sh : shards_) {
    if (!sh->q.empty()) m = std::min(m, sh->q.next_time());
  }
  return m;
}

SimTime ParallelEngine::global_next() {
  return sim_.queue_.empty() ? kNever : sim_.queue_.next_time();
}

void ParallelEngine::start_run() {
  // Revalidated at every run entry: links may be added or retuned
  // between runs, and the engine must refuse zero lookahead before the
  // first window rather than deadlock inside it.
  lookahead_ = kNever;
  for (auto& net : sim_.networks_) {
    if (net->latency_min() <= 0) {
      throw std::runtime_error(
          cat("ParallelEngine: network '", net->name(),
              "' has zero minimum latency — conservative synchronization needs positive "
              "lookahead on every link; give set_latency a min > 0"));
    }
    lookahead_ = std::min(lookahead_, net->latency_min());
    net->prepare_parallel(sim_.nodes_.size());
  }
  if (!started_) {
    started_ = true;
    for (int w = 0; w < workers_; ++w) {
      shards_[static_cast<std::size_t>(w)]->thread =
          std::thread(&ParallelEngine::worker_main, this, w);
    }
  }
}

bool ParallelEngine::step() {
  bool ran = false;
  advance(kNever, UINT64_MAX, /*once=*/true, ran);
  return ran;
}

void ParallelEngine::run_until(SimTime t) {
  bool ran = false;
  advance(t, UINT64_MAX, /*once=*/false, ran);
}

void ParallelEngine::run(std::uint64_t max_events) {
  bool ran = false;
  advance(kNever, max_events == 0 ? 1 : max_events, /*once=*/false, ran);
}

void ParallelEngine::advance(SimTime t, std::uint64_t budget, bool once, bool& ran_any) {
  start_run();

  // The coordinator carries its own context while it executes global
  // events and replays barrier flushes.
  pdes::ExecContext cctx;
  cctx.sim = &sim_;
  cctx.engine = this;
  cctx.shard = -1;
  cctx.node = -1;
  cctx.now = sim_.now_;
  pdes::ExecContext* prev = pdes::tl_ctx;
  pdes::tl_ctx = &cctx;
  struct CtxRestore {
    pdes::ExecContext* prev;
    ~CtxRestore() { pdes::tl_ctx = prev; }
  } restore{prev};

  std::uint64_t executed = 0;
  while (true) {
    const SimTime g = global_next();
    const SimTime m = shard_min();
    const SimTime first = std::min(g, m);
    if (first == kNever || first > t) break;

    if (g <= m) {
      // Global events run on the coordinator with workers parked: a
      // fault injector may crash any node, reroute any network.
      EventFn fn;
      const SimTime at = sim_.queue_.pop(fn);
      sim_.now_ = at;
      cctx.now = at;
      cctx.node = -1;
      if (fn) fn();
      ++global_executed_;
      ++executed;
      ctr_events_.inc();
      ran_any = true;
      if (once) break;
      if (executed >= budget) {
        OFTT_LOG_ERROR("sim", "run(): event budget exhausted (", budget, ") — runaway loop?");
        break;
      }
      continue;
    }

    // Bounded-lag window: every event in [now, end) is independent
    // across shards because cross-node influence pays >= lookahead.
    const SimTime end = std::min(std::min(g, sat_add(m, lookahead_)), sat_add(t, 1));
    std::uint64_t before = 0;
    for (auto& sh : shards_) before += sh->executed;
    run_window(end);
    std::uint64_t after = 0;
    for (auto& sh : shards_) after += sh->executed;
    const std::uint64_t delta = after - before;
    executed += delta;
    if (delta > 0) ran_any = true;

    sim_.now_ = std::min(end, t);
    cctx.now = sim_.now_;
    flush_barrier();
    ++windows_;
    ctr_windows_.inc();
    ctr_events_.inc(delta);

    if (once) break;
    if (executed >= budget) {
      OFTT_LOG_ERROR("sim", "run(): event budget exhausted (", budget, ") — runaway loop?");
      break;
    }
  }

  if (t != kNever && sim_.now_ < t) sim_.now_ = t;
}

void ParallelEngine::run_window(SimTime end) {
  const auto wall_start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    window_end_ = end;
    running_ = workers_;
    ++round_;
  }
  cv_workers_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_coord_.wait(lock, [this] { return running_ == 0; });
  }
  // Horizon stall: wall time a worker sat idle while the window was
  // open (waiting for slower shards plus barrier overhead).
  const std::uint64_t wall = elapsed_ns(wall_start);
  for (auto& sh : shards_) {
    stall_ns_ += wall > sh->window_exec_ns ? wall - sh->window_exec_ns : 0;
  }
}

void ParallelEngine::worker_main(int w) {
  Shard& sh = *shards_[static_cast<std::size_t>(w)];
  pdes::ExecContext ctx;
  ctx.sim = &sim_;
  ctx.engine = this;
  ctx.shard = w;
  pdes::tl_ctx = &ctx;

  // This worker's log lines stamp its thread-local clock and its
  // executing node's (node, seq) merge key, and buffer until the
  // barrier replays them in deterministic order.
  Logger& logger = Logger::instance();
  logger.set_clock([&ctx] { return ctx.now; });
  logger.set_origin([this, &ctx]() -> std::pair<int, std::uint64_t> {
    if (ctx.node < 0) return {-1, 0};
    return {ctx.node,
            ++sim_.nodes_[static_cast<std::size_t>(ctx.node)]->pdes().log_seq};
  });
  logger.set_buffer(&sh.log_buf);

  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_workers_.wait(lock, [&] { return shutdown_ || round_ != seen; });
    if (shutdown_) break;
    seen = round_;
    const SimTime end = window_end_;
    lock.unlock();

    const auto exec_start = std::chrono::steady_clock::now();
    while (!sh.q.empty() && sh.q.next_time() < end) {
      EventFn fn;
      const SimTime at = sh.q.pop(fn);
      ctx.now = at;
      const std::uint32_t target = sh.q.last_target();
      ctx.node = target == EventQueue::kNoTarget ? -1 : static_cast<int>(target);
      if (fn) fn();
      ++sh.executed;
    }
    ctx.node = -1;
    sh.window_exec_ns = elapsed_ns(exec_start);

    lock.lock();
    if (--running_ == 0) cv_coord_.notify_one();
  }
  lock.unlock();

  logger.set_buffer(nullptr);
  logger.set_origin(nullptr);
  logger.set_clock(nullptr);
  pdes::tl_ctx = nullptr;
}

void ParallelEngine::flush_barrier() {
  // 1. Cross-partition deliveries into their destination shard queues.
  //    Arrival order is irrelevant: the queues re-order by (time, key).
  for (int s = 0; s < workers_; ++s) {
    for (int d = 0; d < workers_; ++d) {
      if (s == d) continue;
      EventQueue& dq = shards_[static_cast<std::size_t>(d)]->q;
      mailbox(s, d).drain([&dq](CrossEvent&& e) {
        dq.schedule_keyed(e.at, e.key, e.target, nullptr, std::move(e.fn));
      });
    }
  }
  std::size_t peak = 0;
  std::uint64_t spills = 0;
  for (auto& mb : mailboxes_) {
    peak = std::max(peak, mb->peak());
    spills += mb->spills();
  }
  g_mailbox_peak_.set(static_cast<std::int64_t>(peak));
  if (spills > spills_reported_) {
    ctr_spills_.inc(spills - spills_reported_);
    spills_reported_ = spills;
  }

  // 2. Replay deferred telemetry in (time, key) order — the order a
  //    sequential execution would have published in.
  bus_merge_.clear();
  for (auto& sh : shards_) {
    for (BusItem& b : sh->bus_buf) bus_merge_.push_back(std::move(b));
    sh->bus_buf.clear();
  }
  if (!bus_merge_.empty()) {
    std::sort(bus_merge_.begin(), bus_merge_.end(), [](const BusItem& a, const BusItem& b) {
      return a.e.at != b.e.at ? a.e.at < b.e.at : a.key < b.key;
    });
    obs::EventBus& bus = sim_.telemetry().bus();
    pdes::ExecContext* c = pdes::tl_ctx;  // the coordinator's context
    const SimTime saved = c->now;
    for (BusItem& b : bus_merge_) {
      c->now = b.e.at;  // a handler that schedules sees the event's time
      bus.dispatch_now(std::move(b.e));
    }
    c->now = saved;
    bus_merge_.clear();
  }

  // 3. Replay buffered log lines in (time, node, seq) order — byte
  //    identical to the sequential emission order.
  log_merge_.clear();
  for (auto& sh : shards_) {
    for (LogRecord& r : sh->log_buf) log_merge_.push_back(std::move(r));
    sh->log_buf.clear();
  }
  if (!log_merge_.empty()) {
    std::sort(log_merge_.begin(), log_merge_.end(), [](const LogRecord& a, const LogRecord& b) {
      if (a.sim_time_ns != b.sim_time_ns) return a.sim_time_ns < b.sim_time_ns;
      if (a.node != b.node) return a.node < b.node;
      return a.seq < b.seq;
    });
    Logger& logger = Logger::instance();
    for (const LogRecord& r : log_merge_) logger.deliver(r);
    log_merge_.clear();
  }

  for (int w = 0; w < workers_; ++w) {
    g_worker_events_[static_cast<std::size_t>(w)].set(
        static_cast<std::int64_t>(shards_[static_cast<std::size_t>(w)]->executed));
  }
  g_stall_ns_.set(static_cast<std::int64_t>(stall_ns_));
}

bool ParallelEngine::empty() const {
  if (!sim_.queue_.empty()) return false;
  for (const auto& sh : shards_) {
    if (!sh->q.empty()) return false;
  }
  return true;
}

std::uint64_t ParallelEngine::events_executed() const {
  std::uint64_t n = global_executed_;
  for (const auto& sh : shards_) n += sh->executed;
  return n;
}

std::uint64_t ParallelEngine::worker_events(int w) const {
  return shards_.at(static_cast<std::size_t>(w))->executed;
}

std::uint64_t ParallelEngine::mailbox_spills() const {
  std::uint64_t n = 0;
  for (const auto& mb : mailboxes_) n += mb->spills();
  return n;
}

std::size_t ParallelEngine::mailbox_peak() const {
  std::size_t n = 0;
  for (const auto& mb : mailboxes_) n = std::max(n, mb->peak());
  return n;
}

std::uint64_t ParallelEngine::stall_ns() const { return stall_ns_; }

}  // namespace oftt::sim
