// Node: a simulated PC. Hosts processes, owns the datagram port table,
// and is the unit of the paper's failure classes (a) node failure and
// (b) NT crash / blue screen of death.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/process.h"

namespace oftt::sim {

class Simulation;

enum class NodeFailureKind { kNone, kPowerFailure, kOsCrash };

class Node {
 public:
  using BootScript = std::function<void(Node&)>;

  Node(Simulation& sim, std::string name, int id);

  const std::string& name() const { return name_; }
  int id() const { return id_; }
  Simulation& sim() { return sim_; }
  bool up() const { return up_; }
  NodeFailureKind last_failure() const { return last_failure_; }
  int boot_count() const { return boot_count_; }

  /// Install the script that (re-)creates this node's processes at boot.
  void set_boot_script(BootScript script) { boot_script_ = std::move(script); }

  /// Power the node on: marks it up and runs the boot script.
  void boot();

  /// Failure class (a): node/power failure. Everything dies instantly;
  /// the node stays down until reboot()/boot().
  void crash();

  /// Failure class (b): NT crash (blue screen). Identical visible effect
  /// — distinguished for reporting, and typically followed by an
  /// automatic reboot after `reboot_after` unless kNever.
  void os_crash(SimTime reboot_after = kNever);

  /// Schedule boot() after `delay` (models POST + NT startup time).
  void reboot(SimTime delay);

  /// Start a process; remembers the factory so restart_process() can
  /// re-create it (local recovery of a crashed application).
  std::shared_ptr<Process> start_process(const std::string& name, Process::Factory factory);

  /// Kill (if alive) and re-create a process from its remembered factory.
  std::shared_ptr<Process> restart_process(const std::string& name);

  std::shared_ptr<Process> find_process(const std::string& name);
  std::vector<std::string> process_names() const;

  // --- datagram plumbing (used by Strand/Network, not applications) ---
  void bind_port(const std::string& port, LifeRef life, MessageHandler h);
  void unbind_port(const std::string& port);
  bool port_bound(const std::string& port) const;
  void deliver(const Datagram& d);

  /// Deterministic per-node counters for the parallel engine: event
  /// tie-break keys, bus/log merge keys, and the node's epoch stream.
  /// Each is only ever advanced by the thread currently executing this
  /// node — its shard worker inside a window, the coordinator at
  /// barriers — so the sequences are pure functions of the node's own
  /// deterministic history, independent of the worker count.
  struct PdesCounters {
    std::uint64_t sched_seq = 0;
    std::uint64_t pub_seq = 0;
    std::uint64_t log_seq = 0;
    std::uint64_t epoch = 0;
  };
  PdesCounters& pdes() { return pdes_; }

 private:
  void kill_all_processes(const std::string& reason);
  void publish_down(const char* why);

  Simulation& sim_;
  std::string name_;
  int id_;
  bool up_ = false;
  int boot_count_ = 0;
  NodeFailureKind last_failure_ = NodeFailureKind::kNone;
  BootScript boot_script_;
  int next_pid_ = 1;

  struct PortEntry {
    LifeRef life;
    MessageHandler handler;
  };
  PdesCounters pdes_;
  std::map<std::string, PortEntry> ports_;
  std::map<std::string, std::shared_ptr<Process>> processes_;
  std::map<std::string, Process::Factory> factories_;
  // Pre-resolved delivery-path metric handles (shared names across all
  // nodes — they address the same registry cells).
  obs::Counter ctr_deliver_down_;
  obs::Counter ctr_deliver_no_port_;
  obs::Counter ctr_deliver_dead_strand_;
};

}  // namespace oftt::sim
