#include "sim/rng.h"

#include <cmath>

namespace oftt::sim {

double Rng::exponential(double mean) {
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 1e-18;
  return -mean * std::log(u);
}

Rng Rng::fork(std::string_view name) const {
  std::uint64_t h = state_ ^ 0xcbf29ce484222325ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return Rng(h);
}

}  // namespace oftt::sim
