// PeriodicTimer: fires a callback every `period` on a strand until
// stopped. Heartbeats, checkpoint periods and PLC scan cycles all use
// this. Safe to stop/restart from inside its own callback.
//
// Timers are the timer wheel's bread and butter: each re-arm is a
// short-horizon schedule (O(1) wheel insert, no allocation), and the
// callback is held as an InlineFn — start() forwards it straight into
// inline storage instead of copying through a std::function.
#pragma once

#include <type_traits>
#include <utility>

#include "sim/process.h"

namespace oftt::sim {

class PeriodicTimer {
 public:
  explicit PeriodicTimer(Strand& strand) : strand_(&strand) {}

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  ~PeriodicTimer() { stop(); }

  /// First fire after `period` (or after `initial_delay` if >= 0).
  /// The callable is perfectly forwarded: rvalues move, lvalues copy
  /// once — never the copy-per-(re)start of the std::function era.
  template <typename F, typename = std::enable_if_t<std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void start(SimTime period, F&& fn, SimTime initial_delay = -1) {
    stop();
    period_ = period;
    fn_ = InlineFn(std::forward<F>(fn));
    running_ = true;
    arm(initial_delay >= 0 ? initial_delay : period_);
  }

  void stop() {
    running_ = false;
    ++generation_;
  }

  bool running() const { return running_; }
  SimTime period() const { return period_; }

 private:
  void arm(SimTime delay) {
    const std::uint64_t gen = generation_;
    strand_->schedule_after(delay, [this, gen] {
      if (!running_ || gen != generation_) return;
      // Re-arm first: fn_ may stop() or restart the timer.
      arm(period_);
      fn_();
    });
  }

  Strand* strand_;
  SimTime period_ = 0;
  InlineFn fn_;
  bool running_ = false;
  std::uint64_t generation_ = 0;
};

}  // namespace oftt::sim
