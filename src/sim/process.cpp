#include "sim/process.h"

#include "common/logging.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::sim {

Strand::Strand(Process& process, std::string name)
    : process_(process), name_(std::move(name)), life_(LifeRef::make()) {}

EventHandle Strand::schedule_after(SimTime delay, EventFn fn) {
  Simulation& sim = process_.sim();
  return sim.schedule_on(sim.now() + delay, life_, std::move(fn), process_.node().id());
}

EventHandle Strand::schedule_at(SimTime at, EventFn fn) {
  return process_.sim().schedule_on(at, life_, std::move(fn), process_.node().id());
}

void Strand::bind(const std::string& port, MessageHandler handler) {
  process_.node().bind_port(port, life_, std::move(handler));
  bound_ports_.push_back(port);
}

void Strand::unbind(const std::string& port) {
  process_.node().unbind_port(port);
  std::erase(bound_ports_, port);
}

Process::Process(Node& node, std::string name, int pid)
    : node_(node), name_(std::move(name)), pid_(pid) {
  main_ = std::make_unique<Strand>(*this, "main");
}

Process::~Process() {
  // Destroying a live Process (e.g. simulation teardown) must still
  // release its ports; kill() is idempotent on a dead one.
  if (main_ && main_->alive()) kill("teardown");
}

Simulation& Process::sim() { return node_.sim(); }

Strand& Process::create_strand(const std::string& name) {
  extra_strands_.push_back(std::make_unique<Strand>(*this, name));
  return *extra_strands_.back();
}

Strand* Process::find_strand(const std::string& name) {
  if (name == "main") return main_.get();
  for (auto& s : extra_strands_) {
    if (s->name() == name) return s.get();
  }
  return nullptr;
}

bool Process::send(int network_id, int dst_node, const std::string& dst_port, Buffer payload,
                   const std::string& src_port) {
  if (!alive() || !node_.up()) return false;
  Datagram d;
  d.network_id = network_id;
  d.src_node = node_.id();
  d.src_port = src_port;
  d.dst_node = dst_node;
  d.dst_port = dst_port;
  d.payload = std::move(payload);
  if (dst_node == node_.id()) {
    // Loopback: local RPC never touches the wire.
    Node* node = &node_;
    sim().schedule_after(microseconds(10),
                         [node, dgram = std::move(d)] { node->deliver(dgram); });
    return true;
  }
  return sim().network(network_id).send(std::move(d));
}

void Process::kill(const std::string& reason) {
  if (!main_->alive()) return;
  OFTT_LOG_DEBUG("sim/process", node_.name(), "/", name_, " killed: ", reason);
  auto dead = [this](Strand& s) {
    s.life_->alive = false;
    for (const auto& port : s.bound_ports_) node_.unbind_port(port);
    s.bound_ports_.clear();
  };
  dead(*main_);
  for (auto& s : extra_strands_) dead(*s);
  // Destroy application objects in reverse construction order; their
  // destructors must not schedule events (all strands are dead anyway).
  for (auto it = components_.rbegin(); it != components_.rend(); ++it) it->reset();
  components_.clear();
  attachments_.clear();
  auto listeners = std::move(exit_listeners_);
  exit_listeners_.clear();
  for (auto& l : listeners) l(reason);
}

void Process::exit_self(const std::string& reason) {
  if (exiting_ || !main_->alive()) return;
  exiting_ = true;
  // Defer to a global event so no destructor runs under our own frame.
  Node* node = &node_;
  std::string pname = name_;
  sim().schedule_after(0, [node, pname, reason] {
    if (auto p = node->find_process(pname)) p->kill(reason);
  });
}

void Process::hang_all() {
  main_->hang();
  for (auto& s : extra_strands_) s->hang();
}

}  // namespace oftt::sim
