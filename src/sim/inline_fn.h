// Move-only callable with small-buffer-optimised storage, the kernel's
// replacement for std::function<void()> on the event hot path.
//
// Why not std::function: libstdc++'s std::function copies its target on
// every copy of the wrapper and heap-allocates any capture over 16
// bytes. Nearly every event closure in this codebase (a strand pointer,
// a couple of ints, a small string, a Buffer) lands between 16 and ~120
// bytes, so the seed kernel paid one malloc/free per scheduled event.
// InlineFn stores captures up to kInlineBytes in place, never copies
// (move-only), and falls back to a single heap cell only for outsized
// captures.
//
// Deliberate limitations, in exchange for the flat fast path:
//   - move-only (events fire once; nothing in the kernel copies them),
//   - no target() / target_type() introspection,
//   - invoking an empty InlineFn is undefined (callers check bool()).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace oftt::sim {

class InlineFn {
 public:
  // Sized so a datagram-delivery closure (Network* + Datagram: two
  // port-name strings, a payload Buffer, ids) stays inline.
  static constexpr std::size_t kInlineBytes = 120;

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  void operator()() { vt_->invoke(&buf_); }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(&buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*destroy)(void*);
    // Move-construct the target into dst from src, then destroy src's.
    void (*relocate)(void* src, void* dst);
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr VTable kInlineVt{
      [](void* s) { (*static_cast<D*>(s))(); },
      [](void* s) { static_cast<D*>(s)->~D(); },
      [](void* src, void* dst) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
  };

  template <typename D>
  static constexpr VTable kHeapVt{
      [](void* s) { (**static_cast<D**>(s))(); },
      [](void* s) { delete *static_cast<D**>(s); },
      [](void* src, void* dst) { *static_cast<D**>(dst) = *static_cast<D**>(src); },
  };

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(&buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVt<D>;
    } else {
      *reinterpret_cast<D**>(&buf_) = new D(std::forward<F>(f));
      vt_ = &kHeapVt<D>;
    }
  }

  void move_from(InlineFn& other) noexcept {
    if (other.vt_ != nullptr) {
      other.vt_->relocate(&other.buf_, &buf_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const VTable* vt_ = nullptr;
};

}  // namespace oftt::sim
