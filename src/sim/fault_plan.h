// FaultPlan: declarative fault schedules for tests and benches.
//
// Instead of hand-scheduling lambdas, a scenario declares its failure
// script ("crash node 0 at t=30s, flap LAN0 every 2s from t=60s, kill
// the app at t=90s") and arms it once. Every injected fault is recorded
// in a journal for the experiment report.
#pragma once

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/disk.h"
#include "sim/simulation.h"

namespace oftt::sim {

class FaultPlan {
 public:
  explicit FaultPlan(Simulation& sim) : sim_(&sim) {}

  struct Injection {
    SimTime at = 0;
    std::string what;
  };

  FaultPlan& crash_node(SimTime at, int node) {
    return add(at, cat("crash node ", node), [this, node] { sim_->node(node).crash(); });
  }

  FaultPlan& os_crash(SimTime at, int node, SimTime reboot_after = kNever) {
    return add(at, cat("NT crash node ", node),
               [this, node, reboot_after] { sim_->node(node).os_crash(reboot_after); });
  }

  FaultPlan& boot_node(SimTime at, int node) {
    return add(at, cat("boot node ", node), [this, node] { sim_->node(node).boot(); });
  }

  FaultPlan& kill_process(SimTime at, int node, std::string name) {
    return add(at, cat("kill ", name, " on node ", node), [this, node, name] {
      if (auto p = sim_->node(node).find_process(name)) p->kill("fault injection");
    });
  }

  FaultPlan& restart_process(SimTime at, int node, std::string name) {
    return add(at, cat("restart ", name, " on node ", node),
               [this, node, name] { sim_->node(node).restart_process(name); });
  }

  FaultPlan& hang_process(SimTime at, int node, std::string name) {
    return add(at, cat("hang ", name, " on node ", node), [this, node, name] {
      if (auto p = sim_->node(node).find_process(name)) p->hang_all();
    });
  }

  FaultPlan& hang_strand(SimTime at, int node, std::string process, std::string strand) {
    return add(at, cat("hang ", process, "/", strand, " on node ", node),
               [this, node, process, strand] {
                 if (auto p = sim_->node(node).find_process(process)) {
                   if (auto* s = p->find_strand(strand)) s->hang();
                 }
               });
  }

  FaultPlan& link(SimTime at, int network, int a, int b, bool up) {
    return add(at, cat(up ? "restore" : "cut", " link ", a, "<->", b, " on net ", network),
               [this, network, a, b, up] { sim_->network(network).set_link(a, b, up); });
  }

  /// Cut and restore a link `count` times, `period` apart (flapping NIC).
  FaultPlan& flap_link(SimTime start, int network, int a, int b, SimTime period, int count) {
    for (int i = 0; i < count; ++i) {
      link(start + 2 * i * period, network, a, b, /*up=*/false);
      link(start + (2 * i + 1) * period, network, a, b, /*up=*/true);
    }
    return *this;
  }

  /// Fail every disk write on a node from `at` (a full / dying disk —
  /// failure mode for the durable journal and MSMQ persistence).
  FaultPlan& disk_full(SimTime at, int node) {
    return add(at, cat("disk full on node ", node),
               [this, node] { DiskStore::of(*sim_).fail_writes(node, true); });
  }

  /// Writes succeed again from `at` (operator freed space / swapped disk).
  FaultPlan& disk_restore(SimTime at, int node) {
    return add(at, cat("disk restored on node ", node),
               [this, node] { DiskStore::of(*sim_).fail_writes(node, false); });
  }

  FaultPlan& network_down(SimTime at, int network, bool down) {
    return add(at, cat(down ? "down" : "up", " network ", network),
               [this, network, down] { sim_->network(network).set_down(down); });
  }

  FaultPlan& partition(SimTime at, int network, std::vector<std::vector<int>> groups) {
    return add(at, cat("partition net ", network),
               [this, network, groups] { sim_->network(network).partition(groups); });
  }

  FaultPlan& heal(SimTime at, int network) {
    return add(at, cat("heal net ", network),
               [this, network] { sim_->network(network).heal(); });
  }

  /// Schedule every declared fault. Idempotent: a second call is a
  /// no-op (steps are never scheduled twice).
  void arm() {
    if (armed_) return;
    armed_ = true;
    for (std::size_t i = 0; i < steps_.size(); ++i) schedule(i);
  }

  bool armed() const { return armed_; }
  /// True if a step was declared after arm() — a scenario-authoring
  /// smell (see add()); such steps are still scheduled, just flagged.
  bool mutated_after_arm() const { return mutated_after_arm_; }
  std::size_t size() const { return steps_.size(); }
  const std::vector<Injection>& journal() const { return journal_; }

 private:
  struct Step {
    SimTime at;
    std::string what;
    std::function<void()> fn;
  };

  /// The scheduled lambda captures the step's *index*, not its payload:
  /// steps_ may grow (reallocate) after arm(), so a reference into the
  /// vector would dangle, but an index resolved through this-> at fire
  /// time stays valid — and the step's string + callback are never
  /// copied per scheduled event.
  void schedule(std::size_t index) {
    sim_->schedule_at(steps_[index].at, [this, index] {
      const Step& step = steps_[index];
      journal_.push_back(Injection{sim_->now(), step.what});
      step.fn();
    });
  }

  FaultPlan& add(SimTime at, std::string what, std::function<void()> fn) {
    steps_.push_back(Step{at, std::move(what), std::move(fn)});
    if (armed_) {
      // Declaring faults after arm() used to leave them silently
      // unscheduled. Flag the late mutation loudly, but schedule the
      // step anyway so the plan's declared contents and its scheduled
      // contents never diverge.
      mutated_after_arm_ = true;
      OFTT_LOG_WARN("sim/fault_plan", "step '", steps_.back().what,
                    "' added after arm(); declare all steps before arming");
      schedule(steps_.size() - 1);
    }
    return *this;
  }

  Simulation* sim_;
  std::vector<Step> steps_;
  std::vector<Injection> journal_;
  bool armed_ = false;
  bool mutated_after_arm_ = false;
};

}  // namespace oftt::sim
