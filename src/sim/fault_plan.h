// FaultPlan: declarative fault schedules for tests and benches.
//
// Instead of hand-scheduling lambdas, a scenario declares its failure
// script ("crash node 0 at t=30s, flap LAN0 every 2s from t=60s, kill
// the app at t=90s") and arms it once. Every injected fault is recorded
// in a journal for the experiment report.
#pragma once

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "sim/disk.h"
#include "sim/simulation.h"

namespace oftt::sim {

class FaultPlan {
 public:
  explicit FaultPlan(Simulation& sim) : sim_(&sim) {}

  struct Injection {
    SimTime at = 0;
    std::string what;
  };

  FaultPlan& crash_node(SimTime at, int node) {
    return add(at, cat("crash node ", node), [this, node] { sim_->node(node).crash(); });
  }

  FaultPlan& os_crash(SimTime at, int node, SimTime reboot_after = kNever) {
    return add(at, cat("NT crash node ", node),
               [this, node, reboot_after] { sim_->node(node).os_crash(reboot_after); });
  }

  FaultPlan& boot_node(SimTime at, int node) {
    return add(at, cat("boot node ", node), [this, node] { sim_->node(node).boot(); });
  }

  FaultPlan& kill_process(SimTime at, int node, std::string name) {
    return add(at, cat("kill ", name, " on node ", node), [this, node, name] {
      if (auto p = sim_->node(node).find_process(name)) p->kill("fault injection");
    });
  }

  FaultPlan& restart_process(SimTime at, int node, std::string name) {
    return add(at, cat("restart ", name, " on node ", node),
               [this, node, name] { sim_->node(node).restart_process(name); });
  }

  FaultPlan& hang_process(SimTime at, int node, std::string name) {
    return add(at, cat("hang ", name, " on node ", node), [this, node, name] {
      if (auto p = sim_->node(node).find_process(name)) p->hang_all();
    });
  }

  FaultPlan& hang_strand(SimTime at, int node, std::string process, std::string strand) {
    return add(at, cat("hang ", process, "/", strand, " on node ", node),
               [this, node, process, strand] {
                 if (auto p = sim_->node(node).find_process(process)) {
                   if (auto* s = p->find_strand(strand)) s->hang();
                 }
               });
  }

  FaultPlan& link(SimTime at, int network, int a, int b, bool up) {
    return add(at, cat(up ? "restore" : "cut", " link ", a, "<->", b, " on net ", network),
               [this, network, a, b, up] { sim_->network(network).set_link(a, b, up); });
  }

  /// Cut and restore a link `count` times, `period` apart (flapping NIC).
  FaultPlan& flap_link(SimTime start, int network, int a, int b, SimTime period, int count) {
    for (int i = 0; i < count; ++i) {
      link(start + 2 * i * period, network, a, b, /*up=*/false);
      link(start + (2 * i + 1) * period, network, a, b, /*up=*/true);
    }
    return *this;
  }

  /// Fail every disk write on a node from `at` (a full / dying disk —
  /// failure mode for the durable journal and MSMQ persistence).
  FaultPlan& disk_full(SimTime at, int node) {
    return add(at, cat("disk full on node ", node),
               [this, node] { DiskStore::of(*sim_).fail_writes(node, true); });
  }

  /// Writes succeed again from `at` (operator freed space / swapped disk).
  FaultPlan& disk_restore(SimTime at, int node) {
    return add(at, cat("disk restored on node ", node),
               [this, node] { DiskStore::of(*sim_).fail_writes(node, false); });
  }

  /// Disk writes fail for a window [at, at + duration) then recover.
  FaultPlan& disk_fail_window(SimTime at, int node, SimTime duration) {
    disk_full(at, node);
    return disk_restore(at + duration, node);
  }

  /// Set a network's independent per-datagram loss probability at `at`.
  FaultPlan& set_loss(SimTime at, int network, double p) {
    return add(at, cat("loss ", p, " on net ", network),
               [this, network, p] { sim_->network(network).set_loss(p); });
  }

  /// Set a network's per-datagram duplication probability at `at`.
  FaultPlan& set_duplicate(SimTime at, int network, double p) {
    return add(at, cat("dup ", p, " on net ", network),
               [this, network, p] { sim_->network(network).set_duplicate(p); });
  }

  /// Uniform loss `p` for a window [at, at + duration), then back to
  /// `after` (default: a clean wire).
  FaultPlan& loss_burst(SimTime at, int network, double p, SimTime duration,
                        double after = 0.0) {
    set_loss(at, network, p);
    return set_loss(at + duration, network, after);
  }

  /// Duplication burst for a window [at, at + duration).
  FaultPlan& dup_burst(SimTime at, int network, double p, SimTime duration,
                       double after = 0.0) {
    set_duplicate(at, network, p);
    return set_duplicate(at + duration, network, after);
  }

  /// Gilbert-Elliott burst-loss channel for a window [at, at + duration):
  /// correlated drop trains (mean length 1/p_exit sends) instead of
  /// independent coin flips. Cleared (state reset to Good) at window end.
  FaultPlan& burst_loss_window(SimTime at, int network, double p_enter, double p_exit,
                               double loss_bad, SimTime duration) {
    add(at, cat("burst-loss on net ", network),
        [this, network, p_enter, p_exit, loss_bad] {
          sim_->network(network).set_burst_loss(p_enter, p_exit, 0.0, loss_bad);
        });
    return add(at + duration, cat("burst-loss cleared on net ", network),
               [this, network] { sim_->network(network).clear_burst_loss(); });
  }

  FaultPlan& network_down(SimTime at, int network, bool down) {
    return add(at, cat(down ? "down" : "up", " network ", network),
               [this, network, down] { sim_->network(network).set_down(down); });
  }

  FaultPlan& partition(SimTime at, int network, std::vector<std::vector<int>> groups) {
    return add(at, cat("partition net ", network),
               [this, network, groups] { sim_->network(network).partition(groups); });
  }

  FaultPlan& heal(SimTime at, int network) {
    return add(at, cat("heal net ", network),
               [this, network] { sim_->network(network).heal(); });
  }

  /// An application-level fault the kernel has no verb for (e.g. fault
  /// a simulated field device). The step is journaled and introspected
  /// like every built-in one.
  FaultPlan& custom(SimTime at, std::string what, std::function<void()> fn) {
    return add(at, std::move(what), std::move(fn));
  }

  /// Schedule every declared fault. Idempotent: a second call is a
  /// no-op (steps are never scheduled twice).
  void arm() {
    if (armed_) return;
    armed_ = true;
    for (std::size_t i = 0; i < steps_.size(); ++i) schedule(i);
  }

  bool armed() const { return armed_; }
  /// True if a step was declared after arm() — a scenario-authoring
  /// smell (see add()); such steps are still scheduled, just flagged.
  bool mutated_after_arm() const { return mutated_after_arm_; }
  std::size_t size() const { return steps_.size(); }
  const std::vector<Injection>& journal() const { return journal_; }

  /// A declared step that has not fired yet (scheduled time still in
  /// the future, or the run ended before it). What the shrinker uses to
  /// prove an op was inert, and what the monitor renders as the
  /// remaining injected schedule.
  struct PendingOp {
    SimTime at = 0;
    std::string what;
  };

  /// True once step `index` has actually executed (its injection is in
  /// the journal). Out-of-range indices are never fired.
  bool step_fired(std::size_t index) const {
    return index < steps_.size() && steps_[index].fired;
  }
  /// Declared time/description of step `index` (introspection for
  /// harnesses that map their own ops onto plan steps).
  PendingOp step(std::size_t index) const {
    const Step& s = steps_.at(index);
    return PendingOp{s.at, s.what};
  }
  std::size_t fired_count() const { return journal_.size(); }

  /// Every declared-but-unfired step, in declaration order.
  std::vector<PendingOp> pending() const {
    std::vector<PendingOp> out;
    for (const Step& s : steps_) {
      if (!s.fired) out.push_back(PendingOp{s.at, s.what});
    }
    return out;
  }

 private:
  struct Step {
    SimTime at;
    std::string what;
    std::function<void()> fn;
    bool fired = false;
  };

  /// The scheduled lambda captures the step's *index*, not its payload:
  /// steps_ may grow (reallocate) after arm(), so a reference into the
  /// vector would dangle, but an index resolved through this-> at fire
  /// time stays valid — and the step's string + callback are never
  /// copied per scheduled event.
  void schedule(std::size_t index) {
    sim_->schedule_at(steps_[index].at, [this, index] {
      Step& step = steps_[index];
      step.fired = true;
      journal_.push_back(Injection{sim_->now(), step.what});
      step.fn();
    });
  }

  FaultPlan& add(SimTime at, std::string what, std::function<void()> fn) {
    steps_.push_back(Step{at, std::move(what), std::move(fn)});
    if (armed_) {
      // Declaring faults after arm() used to leave them silently
      // unscheduled. Flag the late mutation loudly, but schedule the
      // step anyway so the plan's declared contents and its scheduled
      // contents never diverge.
      mutated_after_arm_ = true;
      OFTT_LOG_WARN("sim/fault_plan", "step '", steps_.back().what,
                    "' added after arm(); declare all steps before arming");
      schedule(steps_.size() - 1);
    }
    return *this;
  }

  Simulation* sim_;
  std::vector<Step> steps_;
  std::vector<Injection> journal_;
  bool armed_ = false;
  bool mutated_after_arm_ = false;
};

}  // namespace oftt::sim
