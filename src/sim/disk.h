// DiskStore: per-node persistent storage that survives process death and
// node reboot (but is unreachable while the node is down) — the
// simulated hard disk. MSMQ recoverable messages and OFTT persistent
// role hints live here.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "sim/simulation.h"

namespace oftt::sim {

class DiskStore {
 public:
  static DiskStore& of(Simulation& sim) { return sim.attachment<DiskStore>(); }

  void write(int node, const std::string& key, Buffer value) {
    data_[{node, key}] = std::move(value);
  }
  std::optional<Buffer> read(int node, const std::string& key) const {
    auto it = data_.find({node, key});
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }
  void erase(int node, const std::string& key) { data_.erase({node, key}); }

  std::vector<std::string> keys_with_prefix(int node, const std::string& prefix) const {
    std::vector<std::string> out;
    for (auto it = data_.lower_bound({node, prefix}); it != data_.end(); ++it) {
      if (it->first.first != node || it->first.second.rfind(prefix, 0) != 0) break;
      out.push_back(it->first.second);
    }
    return out;
  }

 private:
  std::map<std::pair<int, std::string>, Buffer> data_;
};

}  // namespace oftt::sim
