// DiskStore: per-node persistent storage that survives process death and
// node reboot (but is unreachable while the node is down) — the
// simulated hard disk. MSMQ recoverable messages, the durable
// checkpoint/message journal (src/store/), and OFTT persistent role
// hints live here.
//
// Writes are accounted per node and can be made to fail like a full
// disk: set_capacity() caps a node's used bytes, and fail_writes() is
// the chaos hook that rejects every write outright (a dying disk).
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "sim/simulation.h"

namespace oftt::sim {

class DiskStore {
 public:
  static DiskStore& of(Simulation& sim) { return sim.attachment<DiskStore>(); }

  /// Store `value` under (node, key). Returns false — and stores
  /// nothing — when the node's disk is failed or the write would push
  /// used bytes past the node's capacity (a full disk: the existing
  /// value stays intact, exactly like a failed overwrite on NTFS).
  bool write(int node, const std::string& key, Buffer value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& acct = accounts_[node];
    if (acct.fail_writes) return false;
    auto it = data_.find({node, key});
    std::size_t old_bytes = it != data_.end() ? it->second.size() : 0;
    if (acct.capacity != 0 &&
        acct.used_bytes - old_bytes + value.size() > acct.capacity) {
      return false;
    }
    acct.used_bytes = acct.used_bytes - old_bytes + value.size();
    data_[{node, key}] = std::move(value);
    return true;
  }
  std::optional<Buffer> read(int node, const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find({node, key});
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }
  void erase(int node, const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = data_.find({node, key});
    if (it == data_.end()) return;
    accounts_[node].used_bytes -= it->second.size();
    data_.erase(it);
  }

  /// Erase every key of a node starting with `prefix`; returns bytes
  /// reclaimed. This is what journal compaction uses to retire whole
  /// segments.
  std::size_t erase_prefix(int node, const std::string& prefix) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t reclaimed = 0;
    auto it = data_.lower_bound({node, prefix});
    while (it != data_.end() && it->first.first == node &&
           it->first.second.rfind(prefix, 0) == 0) {
      reclaimed += it->second.size();
      it = data_.erase(it);
    }
    accounts_[node].used_bytes -= reclaimed;
    return reclaimed;
  }

  std::vector<std::string> keys_with_prefix(int node, const std::string& prefix) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    for (auto it = data_.lower_bound({node, prefix}); it != data_.end(); ++it) {
      if (it->first.first != node || it->first.second.rfind(prefix, 0) != 0) break;
      out.push_back(it->first.second);
    }
    return out;
  }

  /// Bytes currently stored for a node (sum of value sizes).
  std::size_t used_bytes(int node) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = accounts_.find(node);
    return it != accounts_.end() ? it->second.used_bytes : 0;
  }

  /// Cap a node's disk at `bytes` (0 = unlimited). Writes that would
  /// exceed the cap fail; existing data is never truncated.
  void set_capacity(int node, std::size_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    accounts_[node].capacity = bytes;
  }
  std::size_t capacity(int node) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = accounts_.find(node);
    return it != accounts_.end() ? it->second.capacity : 0;
  }

  /// Chaos hook: make every write on `node` fail (FaultPlan::disk_full).
  void fail_writes(int node, bool fail) {
    std::lock_guard<std::mutex> lock(mu_);
    accounts_[node].fail_writes = fail;
  }
  bool writes_failing(int node) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = accounts_.find(node);
    return it != accounts_.end() && it->second.fail_writes;
  }

 private:
  struct Account {
    std::size_t used_bytes = 0;
    std::size_t capacity = 0;  // 0 = unlimited
    bool fail_writes = false;
  };
  // The map structure is shared across nodes even though every key is
  // per-node: parallel-engine workers mutate concurrently, so the whole
  // store is mutex-guarded. Values are copied out under the lock.
  mutable std::mutex mu_;
  std::map<std::pair<int, std::string>, Buffer> data_;
  std::map<int, Account> accounts_;
};

}  // namespace oftt::sim
