// Simulation: the deterministic discrete-event kernel everything runs
// on. By default single-threaded; virtual time only advances between
// events, so a given seed replays the identical history — which is how
// we reproduce the paper's §3.2 startup race on demand instead of by
// accident. set_engine(EngineKind::kParallel) swaps in the conservative
// parallel engine (src/sim/parallel_engine.h), which executes the same
// history across worker threads — byte-identical for any worker count,
// at the cost of per-node (rather than globally shared) rng substreams.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <typeindex>
#include <vector>

#include "obs/telemetry.h"
#include "sim/event_queue.h"
#include "sim/exec_context.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/partition.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace oftt::sim {

class ParallelEngine;

enum class EngineKind { kSequential, kParallel };

/// Per-run engine selection. Default sequential: every pinned
/// kernel/chaos-corpus hash predates the parallel engine and must stay
/// untouched.
struct EngineConfig {
  EngineKind kind = EngineKind::kSequential;
  /// Worker threads (>= 1). One worker still runs the full parallel
  /// machinery — shard queues, keyed ordering, barrier windows — and is
  /// the sequential-order reference the W>1 hashes are diffed against.
  int workers = 2;
  PartitionStrategy partition = PartitionStrategy::kRoundRobin;
  /// Per (src shard, dst shard) SPSC ring capacity; overflow spills
  /// (counted, never blocking).
  std::size_t mailbox_capacity = 1024;
};

/// Overlay OFTT_ENGINE ("sequential" | "parallel") and
/// OFTT_ENGINE_WORKERS onto `def`. Harness/test opt-in only — a
/// Simulation never reads the environment by itself (pinned sequential
/// hashes must not depend on ambient state). The CI parallel lane sets
/// these to push an extra worker count through the pdes suites.
EngineConfig engine_config_from_env(EngineConfig def = {});

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const {
    // Under the parallel engine each worker tracks its own clock in a
    // thread-local context; the shared now_ only moves at barriers.
    const pdes::ExecContext* c = pdes::tl_ctx;
    return (c != nullptr && c->sim == this) ? c->now : now_;
  }
  Rng& rng() { return rng_; }
  Rng fork_rng(std::string_view name) const { return rng_.fork(name); }

  /// Select the engine for this simulation. Must be called before any
  /// node, network or event exists (the parallel engine owns the shard
  /// queues events are routed into); throws std::logic_error otherwise.
  void set_engine(const EngineConfig& config);
  const EngineConfig& engine_config() const { return engine_cfg_; }
  /// Non-null iff running under EngineKind::kParallel.
  ParallelEngine* parallel_engine() { return engine_.get(); }

  /// Monotonic epoch counter, never reused within a simulation. Transport
  /// sessions stamp their frames with one so a peer that reboots (new
  /// endpoint instance, new epoch) can never confuse stale traffic from a
  /// previous life with the current conversation. Under the parallel
  /// engine, epochs requested from a node's execution context come from
  /// that node's own stream (high bits = node id + 1) so the values are
  /// independent of worker interleaving; both streams are monotonic per
  /// endpoint, which is all the protocol compares.
  std::uint64_t next_epoch();

  /// Global (always-fires) scheduling; used by fault injectors and
  /// harnesses. Application code schedules through its Strand instead.
  EventHandle schedule_at(SimTime at, EventFn&& fn);
  EventHandle schedule_after(SimTime delay, EventFn&& fn) {
    return schedule_at(now() + delay, std::move(fn));
  }
  void cancel(EventHandle& h) { EventQueue::cancel_owned(h); }

  Node& add_node(const std::string& name);
  Node* find_node(const std::string& name);
  Node& node(int id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  std::size_t node_count() const { return nodes_.size(); }

  Network& add_network(const std::string& name);
  Network& network(int id) { return *networks_.at(static_cast<std::size_t>(id)); }
  std::size_t network_count() const { return networks_.size(); }

  /// Run one event; false when the queue is empty.
  bool step();
  /// Run events with time <= t, then set now to t.
  void run_until(SimTime t);
  void run_for(SimTime d) { run_until(now_ + d); }
  /// Drain the queue (bounded by max_events as a runaway guard).
  void run(std::uint64_t max_events = 100'000'000);

  /// The telemetry subsystem: event bus, metrics registry, failover
  /// spans. Hot paths resolve metric handles once at construction; the
  /// string-keyed reads below are for tests and benches only.
  obs::Telemetry& telemetry() { return telemetry_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }

  std::uint64_t counter_value(const std::string& name) const {
    return telemetry_.metrics().counter_value(name);
  }

  // Internal: Strand scheduling funnels through here. `node` is the
  // strand's home node; the parallel engine routes the event to that
  // node's shard and keys it from the node's deterministic counter
  // (sequential mode ignores it).
  EventHandle schedule_on(SimTime at, LifeRef life, EventFn&& fn, int node = -1);

  /// Per-simulation typed singletons (e.g. the DCOM class directory —
  /// the moral equivalent of HKEY_LOCAL_MACHINE replicated to all PCs).
  /// Resolution is mutex-guarded: under the parallel engine, workers on
  /// different nodes may race to attach the same singleton (DiskStore).
  template <typename T, typename... Args>
  T& attachment(Args&&... args) {
    std::lock_guard<std::mutex> lock(attachments_mu_);
    auto it = attachments_.find(std::type_index(typeid(T)));
    if (it == attachments_.end()) {
      auto obj = std::make_shared<T>(std::forward<Args>(args)...);
      T& ref = *obj;
      attachments_.emplace(std::type_index(typeid(T)), std::move(obj));
      return ref;
    }
    return *static_cast<T*>(it->second.get());
  }

 private:
  friend class ParallelEngine;

  SimTime now_ = 0;
  std::uint64_t next_epoch_ = 1;
  // Declared first so it outlives nodes/networks during teardown (their
  // metric handles point into the registry).
  obs::Telemetry telemetry_;
  EventQueue queue_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Network>> networks_;
  std::mutex attachments_mu_;
  std::map<std::type_index, std::shared_ptr<void>> attachments_;
  EngineConfig engine_cfg_;
  // Declared last: destroying the engine joins its worker threads
  // before nodes/networks/queue go away.
  std::unique_ptr<ParallelEngine> engine_;
};

}  // namespace oftt::sim
