// Simulation: the deterministic discrete-event kernel everything runs
// on. Single-threaded; virtual time only advances between events, so a
// given seed replays the identical history — which is how we reproduce
// the paper's §3.2 startup race on demand instead of by accident.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <typeindex>
#include <vector>

#include "obs/telemetry.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/node.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace oftt::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }
  Rng& rng() { return rng_; }
  Rng fork_rng(std::string_view name) const { return rng_.fork(name); }

  /// Monotonic epoch counter, never reused within a simulation. Transport
  /// sessions stamp their frames with one so a peer that reboots (new
  /// endpoint instance, new epoch) can never confuse stale traffic from a
  /// previous life with the current conversation.
  std::uint64_t next_epoch() { return next_epoch_++; }

  /// Global (always-fires) scheduling; used by fault injectors and
  /// harnesses. Application code schedules through its Strand instead.
  EventHandle schedule_at(SimTime at, EventFn&& fn);
  EventHandle schedule_after(SimTime delay, EventFn&& fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }
  void cancel(EventHandle& h) { queue_.cancel(h); }

  Node& add_node(const std::string& name);
  Node* find_node(const std::string& name);
  Node& node(int id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  std::size_t node_count() const { return nodes_.size(); }

  Network& add_network(const std::string& name);
  Network& network(int id) { return *networks_.at(static_cast<std::size_t>(id)); }
  std::size_t network_count() const { return networks_.size(); }

  /// Run one event; false when the queue is empty.
  bool step();
  /// Run events with time <= t, then set now to t.
  void run_until(SimTime t);
  void run_for(SimTime d) { run_until(now_ + d); }
  /// Drain the queue (bounded by max_events as a runaway guard).
  void run(std::uint64_t max_events = 100'000'000);

  /// The telemetry subsystem: event bus, metrics registry, failover
  /// spans. Hot paths resolve metric handles once at construction; the
  /// string-keyed reads below are for tests and benches only.
  obs::Telemetry& telemetry() { return telemetry_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }

  std::uint64_t counter_value(const std::string& name) const {
    return telemetry_.metrics().counter_value(name);
  }

  // Internal: Strand scheduling funnels through here.
  EventHandle schedule_on(SimTime at, LifeRef life, EventFn&& fn);

  /// Per-simulation typed singletons (e.g. the DCOM class directory —
  /// the moral equivalent of HKEY_LOCAL_MACHINE replicated to all PCs).
  template <typename T, typename... Args>
  T& attachment(Args&&... args) {
    auto it = attachments_.find(std::type_index(typeid(T)));
    if (it == attachments_.end()) {
      auto obj = std::make_shared<T>(std::forward<Args>(args)...);
      T& ref = *obj;
      attachments_.emplace(std::type_index(typeid(T)), std::move(obj));
      return ref;
    }
    return *static_cast<T*>(it->second.get());
  }

 private:
  SimTime now_ = 0;
  std::uint64_t next_epoch_ = 1;
  // Declared first so it outlives nodes/networks during teardown (their
  // metric handles point into the registry).
  obs::Telemetry telemetry_;
  EventQueue queue_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Network>> networks_;
  std::map<std::type_index, std::shared_ptr<void>> attachments_;
};

}  // namespace oftt::sim
