// Process and Strand: a simulated NT process and its schedulable
// execution contexts ("threads").
//
// A Strand is the granularity of both scheduling and hanging: the
// paper's FTIM runs as its own thread inside the application's address
// space, so an application-thread hang must leave the FTIM strand
// running (heartbeats continue; only the watchdog catches the hang).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <typeindex>
#include <vector>

#include "sim/event_queue.h"
#include "sim/message.h"
#include "sim/time.h"

namespace oftt::sim {

class Node;
class Simulation;
class Process;

// StrandLife (the shared liveness token checked at event dispatch)
// lives in event_queue.h: the kernel stores it natively in each slot.

class Strand {
 public:
  Strand(Process& process, std::string name);

  const std::string& name() const { return name_; }
  Process& process() { return process_; }
  bool alive() const { return life_->alive; }
  bool hung() const { return life_->hung; }

  /// Schedule `fn` to run on this strand after `delay`. The callback is
  /// silently discarded if the strand has died or hung by fire time.
  EventHandle schedule_after(SimTime delay, EventFn fn);
  EventHandle schedule_at(SimTime at, EventFn fn);

  /// Bind a datagram port; the handler executes on this strand.
  void bind(const std::string& port, MessageHandler handler);
  void unbind(const std::string& port);

  void hang() { life_->hung = true; }
  void unhang() { life_->hung = false; }

  const LifeRef& life() const { return life_; }

 private:
  friend class Process;
  Process& process_;
  std::string name_;
  LifeRef life_;
  std::vector<std::string> bound_ports_;
};

class Process {
 public:
  using Factory = std::function<void(Process&)>;
  using ExitListener = std::function<void(const std::string& reason)>;

  Process(Node& node, std::string name, int pid);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  int pid() const { return pid_; }
  Node& node() { return node_; }
  const Node& node() const { return node_; }
  Simulation& sim();

  bool alive() const { return main_->alive(); }

  /// The implicit first thread of the process.
  Strand& main_strand() { return *main_; }
  /// Spawn an additional thread-like context (e.g. the FTIM thread).
  Strand& create_strand(const std::string& name);
  Strand* find_strand(const std::string& name);

  // Convenience passthroughs operating on the main strand.
  EventHandle schedule_after(SimTime delay, EventFn fn) {
    return main_->schedule_after(delay, std::move(fn));
  }
  void bind(const std::string& port, MessageHandler handler) {
    main_->bind(port, std::move(handler));
  }

  /// Send a datagram from this process over the given network.
  /// Returns false if the network refused immediately (node detached or
  /// local node down); in-flight loss is invisible to the sender.
  bool send(int network_id, int dst_node, const std::string& dst_port, Buffer payload,
            const std::string& src_port = "");

  /// Terminate the process now: all strands die, pending events are
  /// tombstoned, ports unbound, components destroyed (reverse order).
  /// Must not be called from one of this process's own strands — use
  /// exit_self() there.
  void kill(const std::string& reason);

  /// Deferred self-termination, safe to call from the process's own code.
  void exit_self(const std::string& reason);

  /// Hang every strand (full-process hang; a stuck app image).
  void hang_all();

  void on_exit(ExitListener fn) { exit_listeners_.push_back(std::move(fn)); }

  /// Keep an application object alive for the life of the process.
  void add_component(std::shared_ptr<void> component) {
    components_.push_back(std::move(component));
  }

  /// Per-process typed singleton (e.g. the COM runtime attaches here).
  template <typename T, typename... Args>
  T& attachment(Args&&... args) {
    auto it = attachments_.find(std::type_index(typeid(T)));
    if (it == attachments_.end()) {
      auto obj = std::make_shared<T>(std::forward<Args>(args)...);
      T& ref = *obj;
      attachments_.emplace(std::type_index(typeid(T)), std::move(obj));
      return ref;
    }
    return *static_cast<T*>(it->second.get());
  }

  template <typename T>
  T* find_attachment() {
    auto it = attachments_.find(std::type_index(typeid(T)));
    return it == attachments_.end() ? nullptr : static_cast<T*>(it->second.get());
  }

 private:
  friend class Strand;
  Node& node_;
  std::string name_;
  int pid_;
  std::unique_ptr<Strand> main_;
  std::vector<std::unique_ptr<Strand>> extra_strands_;
  std::vector<std::shared_ptr<void>> components_;
  std::map<std::type_index, std::shared_ptr<void>> attachments_;
  std::vector<ExitListener> exit_listeners_;
  bool exiting_ = false;
};

}  // namespace oftt::sim
