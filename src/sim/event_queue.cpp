#include "sim/event_queue.h"

#include <cassert>

namespace oftt::sim {

EventHandle EventQueue::schedule(SimTime at, EventFn fn) {
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Entry{at, next_seq_++, cancelled, std::move(fn)});
  ++live_;
  return EventHandle(cancelled);
}

void EventQueue::cancel(EventHandle& h) {
  if (auto flag = h.cancelled_.lock()) {
    if (!*flag) {
      *flag = true;
      assert(live_ > 0);
      --live_;
    }
  }
  h.cancelled_.reset();
}

void EventQueue::drop_tombstones() {
  while (!heap_.empty() && *heap_.top().cancelled) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  auto* self = const_cast<EventQueue*>(this);
  self->drop_tombstones();
  return heap_.empty() ? kNever : heap_.top().at;
}

std::pair<SimTime, EventFn> EventQueue::pop() {
  drop_tombstones();
  assert(!heap_.empty());
  // priority_queue::top() is const; we need to move the callback out.
  Entry& top = const_cast<Entry&>(heap_.top());
  SimTime at = top.at;
  EventFn fn = std::move(top.fn);
  heap_.pop();
  assert(live_ > 0);
  --live_;
  return {at, std::move(fn)};
}

}  // namespace oftt::sim
