#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace oftt::sim {

int EventQueue::Bits256::first_from(int i) const {
  unsigned start = i < 0 ? 0 : static_cast<unsigned>(i);
  if (start >= 256) return -1;
  unsigned word = start >> 6;
  std::uint64_t masked = w[word] & ~((start & 63) == 0 ? 0ull : ((1ull << (start & 63)) - 1));
  while (true) {
    if (masked != 0) {
      return static_cast<int>((word << 6) + static_cast<unsigned>(__builtin_ctzll(masked)));
    }
    if (++word >= 4) return -1;
    masked = w[word];
  }
}

int EventQueue::Bits256::first_after_circular(int i) const {
  int r = first_from(i + 1);
  if (r >= 0) return r;
  // Wrap: smallest set index in [0, i] (i's own bucket can never be
  // occupied — see the routing invariants — but scanning it is harmless).
  r = first_from(0);
  return (r >= 0 && r <= i) ? r : -1;
}

EventQueue::EventQueue() {
  hot_.reserve(256);
  cold_.reserve(256);
  for (unsigned i = 0; i < kSlots; ++i) {
    l0_head_[i] = kNilSlot;
    l1_head_[i] = kNilSlot;
  }
}

std::uint32_t EventQueue::alloc_slot() {
  if (free_head_ != kNilSlot) {
    std::uint32_t idx = free_head_;
    free_head_ = hot_[idx].next;
    hot_[idx].in_use = true;
    return idx;
  }
  hot_.emplace_back();
  cold_.emplace_back();
  hot_.back().in_use = true;
  return static_cast<std::uint32_t>(hot_.size() - 1);
}

void EventQueue::free_slot(std::uint32_t idx) {
  SlotHot& s = hot_[idx];
  cold_[idx].fn.reset();
  cold_[idx].life.reset();
  ++s.gen;  // invalidates every outstanding handle and heap ref
  s.in_use = false;
  s.next = free_head_;
  free_head_ = idx;
}

EventHandle EventQueue::schedule_on(SimTime at, LifeRef life, EventFn&& fn) {
  return schedule_impl(at, next_seq_++, kNoTarget, std::move(life), std::move(fn),
                       /*keyed=*/false);
}

EventHandle EventQueue::schedule_keyed(SimTime at, std::uint64_t key, std::uint32_t target,
                                       LifeRef life, EventFn&& fn) {
  return schedule_impl(at, key, target, std::move(life), std::move(fn), /*keyed=*/true);
}

EventHandle EventQueue::schedule_impl(SimTime at, std::uint64_t seq, std::uint32_t target,
                                      LifeRef life, EventFn&& fn, bool keyed) {
  std::uint32_t idx = alloc_slot();
  SlotHot& s = hot_[idx];
  s.at = at;
  s.seq = seq;
  s.target = target;
  cold_[idx].life = std::move(life);
  cold_[idx].fn = std::move(fn);

  // Route by horizon. A negative or huge `at` (kNever) maps to a tick
  // far outside both windows and lands in the heap.
  std::uint64_t tick = tick_of(at);
  std::uint64_t window_delta = (tick >> 8) - (cur_tick_ >> 8);
  if (tick > cur_tick_ && window_delta < kSlots) {
    s.lane = kLaneWheel;
    wheel_insert(idx, tick);
  } else {
    s.lane = kLaneHeap;
    heap_push(Ref{at, s.seq, idx, s.gen});
  }
  ++live_;
  // The memoised peek stays valid: an event at or after the cached
  // minimum cannot displace it (equal `at` loses on seq — except for a
  // caller-supplied key, which may undercut the cached min's key, so
  // keyed inserts also invalidate on an equal timestamp). Inserting
  // into the cached min's own bucket would stale its recorded list
  // predecessor, so that case invalidates too.
  if (peek_.valid &&
      (peek_.next_at == kNever || at < peek_.next_at || (keyed && at == peek_.next_at) ||
       (s.lane == kLaneWheel && peek_.src == Peek::kWheel &&
        static_cast<int>(tick & 255) == peek_.l0_slot))) {
    peek_.valid = false;
  }
  return EventHandle(this, idx, s.gen);
}

void EventQueue::cancel(EventHandle& h) {
  if (h.q_ == this && handle_live(h.idx_, h.gen_)) {
    SlotHot& s = hot_[h.idx_];
    if (s.lane == kLaneHeap) {
      // Heap refs are value copies: the slot can recycle immediately,
      // the stale ref is dropped when it surfaces (or at compaction).
      ++heap_dead_;
      free_slot(h.idx_);
    } else {
      // Wheel nodes are linked through the slot itself: release the
      // payload now, leave the link in place as a zombie until its
      // bucket is next walked (or the sweep reclaims it).
      cold_[h.idx_].fn.reset();
      cold_[h.idx_].life.reset();
      ++s.gen;
      s.in_use = false;
      ++wheel_dead_;
    }
    assert(live_ > 0);
    --live_;
    peek_.valid = false;
    maybe_compact_heap();
    maybe_sweep_wheel();
  }
  h = EventHandle{};
}

void EventQueue::heap_push(Ref r) {
  heap_.push_back(r);
  std::push_heap(heap_.begin(), heap_.end(), later);
}

SimTime EventQueue::live_heap_min() {
  while (!heap_.empty() && !ref_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
    assert(heap_dead_ > 0);
    --heap_dead_;
  }
  return heap_.empty() ? kNever : heap_.front().at;
}

void EventQueue::maybe_compact_heap() {
  // Compact when tombstones outnumber live refs: bounds the heap at
  // ~2x the live event count no matter how cancel-heavy the workload
  // (the seed kernel only reclaimed tombstones that surfaced at the
  // top, so a schedule/cancel loop grew the heap without bound).
  if (heap_dead_ < 64 || heap_dead_ * 2 < heap_.size()) return;
  std::erase_if(heap_, [this](const Ref& r) { return !ref_live(r); });
  std::make_heap(heap_.begin(), heap_.end(), later);
  heap_dead_ = 0;
  ++compactions_;
}

void EventQueue::wheel_insert(std::uint32_t idx, std::uint64_t tick) {
  SlotHot& s = hot_[idx];
  if ((tick >> 8) == (cur_tick_ >> 8)) {
    unsigned b = static_cast<unsigned>(tick & 255);
    s.next = l0_head_[b];
    l0_head_[b] = idx;
    l0_bits_.set(b);
  } else {
    unsigned b = static_cast<unsigned>((tick >> 8) & 255);
    s.next = l1_head_[b];
    l1_head_[b] = idx;
    l1_bits_.set(b);
  }
  ++wheel_count_;
}

SimTime EventQueue::bucket_min_l0(int s, std::uint32_t& min_idx, std::uint32_t& min_prev) {
  std::uint32_t* head = &l0_head_[static_cast<unsigned>(s)];
  std::uint32_t prev = kNilSlot;
  std::uint32_t cur = *head;
  SimTime best_at = kNever;
  std::uint64_t best_seq = 0;
  min_idx = kNilSlot;
  min_prev = kNilSlot;
  while (cur != kNilSlot) {
    SlotHot& sl = hot_[cur];
    std::uint32_t nxt = sl.next;
    if (!sl.in_use) {  // zombie: unlink and reclaim
      (prev == kNilSlot ? *head : hot_[prev].next) = nxt;
      sl.next = free_head_;
      free_head_ = cur;
      assert(wheel_count_ > 0 && wheel_dead_ > 0);
      --wheel_count_;
      --wheel_dead_;
      cur = nxt;
      continue;
    }
    if (sl.at < best_at || (sl.at == best_at && sl.seq < best_seq)) {
      best_at = sl.at;
      best_seq = sl.seq;
      min_idx = cur;
      min_prev = prev;
    }
    prev = cur;
    cur = nxt;
  }
  if (*head == kNilSlot) l0_bits_.clear(static_cast<unsigned>(s));
  return best_at;
}

void EventQueue::drain_l0(int s) {
  std::uint32_t cur = l0_head_[static_cast<unsigned>(s)];
  while (cur != kNilSlot) {
    SlotHot& sl = hot_[cur];
    std::uint32_t nxt = sl.next;
    assert(wheel_count_ > 0);
    --wheel_count_;
    if (sl.in_use) {
      sl.lane = kLaneHeap;
      heap_push(Ref{sl.at, sl.seq, cur, sl.gen});
    } else {
      sl.next = free_head_;
      free_head_ = cur;
      assert(wheel_dead_ > 0);
      --wheel_dead_;
    }
    cur = nxt;
  }
  l0_head_[static_cast<unsigned>(s)] = kNilSlot;
  l0_bits_.clear(static_cast<unsigned>(s));
}

void EventQueue::cascade_l1(int j) {
  std::uint32_t cur = l1_head_[static_cast<unsigned>(j)];
  while (cur != kNilSlot) {
    SlotHot& sl = hot_[cur];
    std::uint32_t nxt = sl.next;
    if (sl.in_use) {
      unsigned b = static_cast<unsigned>(tick_of(sl.at) & 255);
      sl.next = l0_head_[b];
      l0_head_[b] = cur;
      l0_bits_.set(b);
    } else {
      sl.next = free_head_;
      free_head_ = cur;
      assert(wheel_count_ > 0 && wheel_dead_ > 0);
      --wheel_count_;
      --wheel_dead_;
    }
    cur = nxt;
  }
  l1_head_[static_cast<unsigned>(j)] = kNilSlot;
  l1_bits_.clear(static_cast<unsigned>(j));
}

void EventQueue::sweep_bucket(std::uint32_t& head, unsigned bit, Bits256& bits) {
  std::uint32_t prev = kNilSlot;
  std::uint32_t cur = head;
  while (cur != kNilSlot) {
    SlotHot& sl = hot_[cur];
    std::uint32_t nxt = sl.next;
    if (!sl.in_use) {
      (prev == kNilSlot ? head : hot_[prev].next) = nxt;
      sl.next = free_head_;
      free_head_ = cur;
      --wheel_count_;
      --wheel_dead_;
    } else {
      prev = cur;
    }
    cur = nxt;
  }
  if (head == kNilSlot) bits.clear(bit);
}

void EventQueue::maybe_sweep_wheel() {
  // Same bound as the heap: when cancelled nodes outnumber live ones,
  // walk every bucket and unlink them, so a schedule/cancel loop whose
  // delays land in the wheel cannot grow the slab without bound.
  if (wheel_dead_ < 64 || wheel_dead_ * 2 < wheel_count_) return;
  for (unsigned i = 0; i < kSlots; ++i) {
    if (l0_bits_.test(i)) sweep_bucket(l0_head_[i], i, l0_bits_);
    if (l1_bits_.test(i)) sweep_bucket(l1_head_[i], i, l1_bits_);
  }
  ++wheel_sweeps_;
}

void EventQueue::ensure_peek() {
  if (peek_.valid) return;
  SimTime hm = live_heap_min();
  // Find the earliest live wheel event, cascading windows only while
  // they could still beat the heap. The L0 scan includes the cursor's
  // own tick: a cascade lands events due exactly at the window start
  // there, and a partially-popped bucket keeps its remaining events.
  SimTime wn = kNever;
  int wslot = -1;
  std::uint32_t min_idx = kNilSlot;
  std::uint32_t min_prev = kNilSlot;
  while (wheel_count_ > 0) {
    int s = l0_bits_.first_from(static_cast<int>(cur_tick_ & 255));
    if (s >= 0) {
      SimTime m = bucket_min_l0(s, min_idx, min_prev);
      if (m == kNever) continue;  // bucket was all zombies; rescan
      // Keep the cursor on the earliest occupied tick so schedule()
      // routes relative to the present.
      cur_tick_ = (cur_tick_ & ~std::uint64_t{255}) | static_cast<unsigned>(s);
      wn = m;
      wslot = s;
      break;
    }
    std::uint64_t cw = cur_tick_ >> 8;
    int j = l1_bits_.first_after_circular(static_cast<int>(cw & 255));
    if (j < 0) break;  // defensive: counts say occupied but no bits set
    std::uint64_t dist = (static_cast<std::uint64_t>(j) - cw) & 255;
    assert(dist != 0);  // a bucket at the cursor's own window index is unreachable
    std::uint64_t window_start = (cw + dist) << 8;
    // Every event in that window is at or after its start; if even the
    // lower bound loses to the heap, leave the window uncascaded.
    if (static_cast<SimTime>(window_start << kTickShift) > hm) break;
    cur_tick_ = window_start;
    cascade_l1(j);
  }

  if (wn < hm && tick_of(wn) != tick_of(hm)) {
    peek_.src = Peek::kWheel;
    peek_.next_at = wn;
    peek_.l0_slot = wslot;
    peek_.min_idx = min_idx;
    peek_.min_prev = min_prev;
  } else {
    if (wslot >= 0 && wn <= hm) {
      // Same-tick overlap between lanes (or an exact tie): merge the
      // bucket into the heap so the (at, seq) comparator orders it.
      drain_l0(wslot);
      hm = live_heap_min();
    }
    peek_.src = hm == kNever ? Peek::kEmpty : Peek::kHeap;
    peek_.next_at = hm;
    peek_.l0_slot = -1;
  }
  peek_.valid = true;
}

SimTime EventQueue::next_time() {
  ensure_peek();
  return peek_.next_at;
}

SimTime EventQueue::pop(EventFn& fn) {
  ensure_peek();
  assert(peek_.src != Peek::kEmpty);
  std::uint32_t idx;
  if (peek_.src == Peek::kWheel) {
    // Unlink the min node recorded by the peek (no mutation can have
    // intervened: any schedule/cancel invalidates the memo).
    idx = peek_.min_idx;
    std::uint32_t* head = &l0_head_[static_cast<unsigned>(peek_.l0_slot)];
    (peek_.min_prev == kNilSlot ? *head : hot_[peek_.min_prev].next) = hot_[idx].next;
    if (*head == kNilSlot) l0_bits_.clear(static_cast<unsigned>(peek_.l0_slot));
    assert(wheel_count_ > 0);
    --wheel_count_;
  } else {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    idx = heap_.back().idx;
    heap_.pop_back();
  }
  peek_.valid = false;

  SlotHot& s = hot_[idx];
  SlotCold& c = cold_[idx];
  assert(s.in_use && s.at == peek_.next_at);
  SimTime at = s.at;
  last_target_ = s.target;
  // Liveness gate (was a wrapper lambda in the seed kernel): a dead or
  // hung strand's event still advances time but returns no callback.
  if (c.life == nullptr || c.life->runnable()) fn = std::move(c.fn);
  else fn.reset();
  // Free before returning: the event has fired, so its handle must
  // already read invalid inside its own callback.
  free_slot(idx);
  assert(live_ > 0);
  --live_;
  // Re-centre an idle wheel on the present so that after a quiet spell
  // (no short-horizon timers for a minute) new short delays still land
  // in the wheel instead of overflowing to the heap. Only legal when
  // the wheel is empty — resident nodes pin the cursor's windows.
  if (wheel_count_ == 0 && tick_of(at) > cur_tick_) cur_tick_ = tick_of(at);
  return at;
}

}  // namespace oftt::sim
