// Bounded SPSC mailbox for cross-partition event exchange.
//
// Each (source shard, destination shard) pair owns one mailbox. The
// producer is the source worker (pushing deliveries whose timestamps
// land at or beyond the current window's end — the conservative
// lookahead guarantees it); the consumer is the coordinator, which
// drains every mailbox at the window barrier while all workers are
// parked. Push/size use acquire/release atomics so the handoff is
// clean under TSAN even though the barrier itself already orders the
// two sides.
//
// The ring is bounded (EngineConfig::mailbox_capacity). A full ring
// must not block the producer — a blocked worker would deadlock the
// barrier — so overflow spills into a mutex-guarded vector and is
// counted (oftt.pdes.mailbox_spills); determinism is unaffected because
// the destination queue re-orders by (time, key) regardless of arrival
// order.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace oftt::sim {

/// One cross-partition event: the target node's shard queue re-keys
/// nothing — `key` was derived from the *sending* node's deterministic
/// counter at send time (stamped with send-time semantics), so delivery
/// order is reconstructed identically for any worker count.
struct CrossEvent {
  SimTime at = 0;
  std::uint64_t key = 0;
  std::uint32_t target = 0;  // destination node id
  EventFn fn;
};

class SpscMailbox {
 public:
  explicit SpscMailbox(std::size_t capacity) {
    std::size_t cap = 8;
    while (cap < capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscMailbox(const SpscMailbox&) = delete;
  SpscMailbox& operator=(const SpscMailbox&) = delete;

  /// Producer side (single thread). Never blocks: a full ring spills.
  void push(CrossEvent&& e) {
    std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= ring_.size()) {
      std::lock_guard<std::mutex> lock(spill_mu_);
      spill_.push_back(std::move(e));
      spills_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ring_[head & mask_] = std::move(e);
    head_.store(head + 1, std::memory_order_release);
    std::size_t occ = head + 1 - tail;
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (occ > peak &&
           !peak_.compare_exchange_weak(peak, occ, std::memory_order_relaxed)) {
    }
  }

  /// Consumer side; only called at barriers (producer parked).
  template <typename Fn>
  void drain(Fn&& deliver) {
    std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t head = head_.load(std::memory_order_acquire);
    while (tail != head) {
      deliver(std::move(ring_[tail & mask_]));
      ++tail;
    }
    tail_.store(tail, std::memory_order_release);
    std::lock_guard<std::mutex> lock(spill_mu_);
    for (CrossEvent& e : spill_) deliver(std::move(e));
    spill_.clear();
  }

  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t spills() const { return spills_.load(std::memory_order_relaxed); }
  /// High-water occupancy since construction (the oftt.pdes metric).
  std::size_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  std::vector<CrossEvent> ring_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};
  std::atomic<std::size_t> tail_{0};
  std::atomic<std::size_t> peak_{0};
  std::atomic<std::uint64_t> spills_{0};
  std::mutex spill_mu_;
  std::vector<CrossEvent> spill_;
};

}  // namespace oftt::sim
