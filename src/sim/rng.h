// Deterministic random source. One root Rng per Simulation; subsystems
// fork independent streams (`fork`) so adding a random draw in one
// module does not perturb the sequence seen by another — this keeps
// regression traces stable as the codebase grows.
#pragma once

#include <cstdint>
#include <string_view>

namespace oftt::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  /// splitmix64 step.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<std::int64_t>(next_u64() % static_cast<std::uint64_t>(hi - lo + 1));
  }

  /// Bernoulli draw.
  bool chance(double p) { return next_double() < p; }

  /// Exponential with the given mean (> 0); used for caller arrivals etc.
  double exponential(double mean);

  /// Fork a decorrelated child stream named for its consumer.
  Rng fork(std::string_view name) const;

 private:
  std::uint64_t state_;
};

}  // namespace oftt::sim
