// The event queue at the heart of the simulation: a time-ordered heap of
// callbacks with stable FIFO ordering for equal timestamps (sequence
// numbers) and O(1) cancellation (tombstoning).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace oftt::sim {

using EventFn = std::function<void()>;

/// Opaque handle for cancelling a scheduled event. Default-constructed
/// handles are inert.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return !cancelled_.expired(); }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_(std::move(cancelled)) {}
  std::weak_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  EventHandle schedule(SimTime at, EventFn fn);
  void cancel(EventHandle& h);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }
  SimTime next_time() const;

  /// Pop the earliest live event; precondition: !empty().
  std::pair<SimTime, EventFn> pop();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::shared_ptr<bool> cancelled;  // tombstone flag
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  void drop_tombstones();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace oftt::sim
