// The event queue at the heart of the simulation, rebuilt around a slab
// pool and a two-level timer wheel.
//
// The seed kernel paid three heap allocations per scheduled event: a
// shared_ptr<bool> tombstone for the handle, std::function's capture
// cell, and (for strand events) a second std::function wrapping the
// liveness check. This version allocates nothing on the steady-state
// schedule/fire/cancel cycle:
//
//   - Events live in a slab of reusable Slots; a freelist recycles
//     indices and a per-slot generation counter makes stale handles
//     detectable. EventHandle is {queue, index, generation} — three
//     words, trivially copyable, O(1) cancel, no refcounts.
//   - Callbacks are InlineFn (see inline_fn.h): captures up to 120
//     bytes stay inside the slot.
//   - Strand liveness (StrandLife) is a first-class slot field checked
//     at pop time, not a wrapper lambda.
//
// Ordering lanes. A comparison heap orders arbitrary timestamps in
// O(log n), but most traffic is short-horizon timers (heartbeats,
// RTOs, scan cycles) for which a timer wheel gives O(1) insert and
// cancel. Events are routed by delay at schedule time:
//
//   heap  — events due in the cursor's current tick or earlier, and
//           events beyond the wheel horizon (~68 s), incl. kNever.
//   L0    — events in the cursor's current 256-tick window
//           (tick = 2^20 ns ≈ 1.05 ms, window ≈ 268 ms).
//   L1    — events within the next 255 windows (≈ 68 s); cascaded
//           into L0 when the cursor enters their window.
//
// Wheel buckets are intrusive singly-linked lists threaded through the
// slab (Slot::next doubles as the freelist link), so insert, cascade
// and cancel never touch the allocator. When the earliest pending tick
// lives in the wheel and the heap holds nothing due in that tick, the
// event pops straight out of its bucket; only a genuine same-tick
// overlap between lanes drains the bucket into the heap so the (at,
// seq) comparator can settle the merge. The observable order is
// therefore exactly the (at, seq) total order of a single heap: FIFO
// at equal timestamps, bit-for-bit identical to the seed kernel.
// Determinism is the contract; the wheel may only change what an event
// costs, never when it fires.
//
// Handles must not outlive their EventQueue (in practice: the
// Simulation). Processes and components are destroyed before the queue,
// so any handle stored in application state dies first.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_fn.h"
#include "sim/time.h"

namespace oftt::sim {

using EventFn = InlineFn;

/// Shared liveness token checked at event dispatch; lets us tombstone a
/// whole process (or one strand) in O(1) without touching the heap.
/// (Lives here rather than process.h because the kernel stores it
/// natively in each event slot.)
///
/// Reference-counted intrusively and NON-atomically: a Simulation is
/// strictly single-threaded (the parallel seed sweep runs whole
/// independent Simulations per thread), so the shared_ptr atomics the
/// seed kernel paid twice per strand event bought nothing.
struct StrandLife {
  bool alive = true;
  bool hung = false;
  int refs = 0;  // managed by LifeRef
  bool runnable() const { return alive && !hung; }
};

/// Intrusive smart pointer for StrandLife (see above for why not
/// shared_ptr). Copy = plain int increment.
class LifeRef {
 public:
  LifeRef() = default;
  LifeRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  explicit LifeRef(StrandLife* p) : p_(p) {
    if (p_ != nullptr) ++p_->refs;
  }
  LifeRef(const LifeRef& o) : p_(o.p_) {
    if (p_ != nullptr) ++p_->refs;
  }
  LifeRef(LifeRef&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  LifeRef& operator=(const LifeRef& o) {
    LifeRef tmp(o);
    std::swap(p_, tmp.p_);
    return *this;
  }
  LifeRef& operator=(LifeRef&& o) noexcept {
    std::swap(p_, o.p_);
    return *this;
  }
  ~LifeRef() { release(); }

  static LifeRef make() { return LifeRef(new StrandLife()); }

  void reset() {
    release();
    p_ = nullptr;
  }
  StrandLife* get() const { return p_; }
  StrandLife* operator->() const { return p_; }
  StrandLife& operator*() const { return *p_; }
  explicit operator bool() const { return p_ != nullptr; }
  bool operator==(std::nullptr_t) const { return p_ == nullptr; }

 private:
  void release() {
    if (p_ != nullptr && --p_->refs == 0) delete p_;
  }
  StrandLife* p_ = nullptr;
};

class EventQueue;

/// Opaque handle for cancelling a scheduled event. Default-constructed
/// handles are inert.
///
/// valid() semantics (pinned by KernelHandleSemantics in kernel_test):
/// true exactly while the event is scheduled and uncancelled. The slot
/// is released *before* the callback runs, so a fired event's handle
/// reads invalid — including inside its own callback. cancel() of an
/// invalid handle (already fired, already cancelled, default) is a
/// harmless no-op; fire-then-cancel and double-cancel are therefore
/// safe races. Slot indices are recycled under a 32-bit generation
/// counter, so a stale handle cannot alias a later event.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const;

 private:
  friend class EventQueue;
  EventHandle(const EventQueue* q, std::uint32_t idx, std::uint32_t gen)
      : q_(q), idx_(idx), gen_(gen) {}
  const EventQueue* q_ = nullptr;
  std::uint32_t idx_ = 0;
  std::uint32_t gen_ = 0;
};

class EventQueue {
 public:
  EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  EventHandle schedule(SimTime at, EventFn&& fn) { return schedule_on(at, nullptr, std::move(fn)); }
  /// Schedule with a liveness gate: the callback is dropped (but time
  /// still advances to `at` if it is the earliest event) when the
  /// strand has died or hung by fire time.
  EventHandle schedule_on(SimTime at, LifeRef life, EventFn&& fn);
  /// Parallel-engine entry: the caller supplies the tie-break key (a
  /// deterministic per-node sequence, not this queue's own counter) and
  /// the node the event targets, so a shard queue's pop order is a pure
  /// function of its contents — identical however events arrived. Keys
  /// share the (at, key) comparator with ordinary seqs.
  EventHandle schedule_keyed(SimTime at, std::uint64_t key, std::uint32_t target, LifeRef life,
                             EventFn&& fn);

  void cancel(EventHandle& h);
  /// Cancel through the handle's *own* queue. Under the parallel engine
  /// a handle may belong to a shard queue rather than the simulation's
  /// global queue; cancel() on the wrong queue is a silent no-op, so
  /// Simulation::cancel routes here.
  static void cancel_owned(EventHandle& h) {
    if (h.q_ != nullptr) const_cast<EventQueue*>(h.q_)->cancel(h);
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }
  /// Earliest pending event time, or kNever. May internally cascade due
  /// wheel windows / reclaim tombstones (hence non-const).
  SimTime next_time();

  /// Pop the earliest live event into `fn` and return its time;
  /// precondition: !empty(). `fn` is left empty when the event's strand
  /// died or hung — the caller still advances time but has nothing to
  /// run. (Out-param form: one InlineFn relocation, slot -> fn.)
  SimTime pop(EventFn& fn);
  /// Target node of the most recently popped event (kNoTarget when it
  /// was scheduled without one). Read by parallel workers to install
  /// the node execution context.
  static constexpr std::uint32_t kNoTarget = 0xFFFFFFFF;
  std::uint32_t last_target() const { return last_target_; }

  // --- introspection for tests and benches ---------------------------
  std::size_t debug_heap_size() const { return heap_.size(); }
  std::size_t debug_wheel_size() const { return wheel_count_; }
  std::size_t debug_slab_size() const { return hot_.size(); }
  std::uint64_t debug_compactions() const { return compactions_; }
  std::uint64_t debug_wheel_sweeps() const { return wheel_sweeps_; }
  bool handle_live(std::uint32_t idx, std::uint32_t gen) const {
    return idx < hot_.size() && hot_[idx].in_use && hot_[idx].gen == gen;
  }

  static constexpr int kTickShift = 20;         // 1 tick = 2^20 ns ≈ 1.05 ms
  static constexpr std::uint32_t kSlots = 256;  // per wheel level

 private:
  enum Lane : std::uint8_t { kLaneHeap = 0, kLaneWheel = 1 };
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFF;

  /// A slot is split structure-of-arrays style: the ordering and link
  /// fields live in a 32-byte hot record (two per cache line) while the
  /// ~140-byte payload (inline callable + liveness token) sits in a
  /// parallel cold array. Bucket walks, cascades, heap compaction and
  /// handle checks touch only hot_; the payload is read exactly twice
  /// per event (written at schedule, moved out at pop).
  struct SlotHot {
    SimTime at = 0;
    std::uint64_t seq = 0;
    std::uint32_t gen = 0;
    /// Freelist link while free; intrusive bucket link while resident
    /// in a wheel bucket (a slot is never on both lists at once: a
    /// cancelled wheel slot stays linked as a zombie until its bucket
    /// is walked, and only then joins the freelist).
    std::uint32_t next = kNilSlot;
    std::uint32_t target = kNoTarget;  // node the event targets (parallel engine)
    Lane lane = kLaneHeap;
    bool in_use = false;
  };
  static_assert(sizeof(SlotHot) <= 32, "keep two hot slots per cache line");

  struct SlotCold {
    EventFn fn;
    LifeRef life;
  };

  /// What the comparison heap holds: 24 bytes, trivially copyable.
  /// `gen` detects refs whose slot was cancelled (and possibly reused).
  struct Ref {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t idx;
    std::uint32_t gen;
  };
  static bool later(const Ref& a, const Ref& b) {
    return a.at != b.at ? a.at > b.at : a.seq > b.seq;
  }

  /// 256-bit occupancy bitmap: which wheel buckets are non-empty.
  struct Bits256 {
    std::uint64_t w[4] = {0, 0, 0, 0};
    void set(unsigned i) { w[i >> 6] |= 1ull << (i & 63); }
    void clear(unsigned i) { w[i >> 6] &= ~(1ull << (i & 63)); }
    bool test(unsigned i) const { return (w[i >> 6] >> (i & 63)) & 1; }
    /// Smallest set index >= i (pass i-1 semantics via callers), or -1.
    int first_from(int i) const;
    /// Smallest set index in circular order starting after `i` (wraps;
    /// never returns `i` itself), or -1 when empty.
    int first_after_circular(int i) const;
  };

  static std::uint64_t tick_of(SimTime at) {
    return static_cast<std::uint64_t>(at) >> kTickShift;
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t idx);
  bool ref_live(const Ref& r) const { return hot_[r.idx].in_use && hot_[r.idx].gen == r.gen; }

  void heap_push(Ref r);
  /// Drop cancelled refs off the heap top; min live heap time or kNever.
  SimTime live_heap_min();
  void maybe_compact_heap();

  void wheel_insert(std::uint32_t idx, std::uint64_t tick);
  /// Walk bucket `s` of L0: reclaim zombies, find the min-(at, seq)
  /// live node (recorded with its list predecessor for O(1) unlink).
  /// Returns kNever and clears the bucket bit when nothing live remains.
  SimTime bucket_min_l0(int s, std::uint32_t& min_idx, std::uint32_t& min_prev);
  /// Move every live node of L0 bucket `s` into the comparison heap
  /// (the same-tick merge path).
  void drain_l0(int s);
  /// Relink L1 bucket `j` (the window the cursor just entered) into L0.
  void cascade_l1(int j);
  void maybe_sweep_wheel();
  void sweep_bucket(std::uint32_t& head, unsigned bit, Bits256& bits);

  /// The single ordering scan shared by next_time() and pop(),
  /// memoised until the next mutation: establishes where the earliest
  /// live event is (heap top, a wheel bucket node, or nowhere) after
  /// cascading any wheel window that could matter and pre-draining a
  /// same-tick lane overlap.
  void ensure_peek();

  // --- slab (parallel hot/cold arrays, same index space) --------------
  std::vector<SlotHot> hot_;
  std::vector<SlotCold> cold_;
  std::uint32_t free_head_ = kNilSlot;

  // --- comparison heap (manual vector + std::push/pop_heap) ----------
  std::vector<Ref> heap_;
  std::size_t heap_dead_ = 0;
  std::uint64_t compactions_ = 0;

  // --- timer wheel ----------------------------------------------------
  std::uint32_t l0_head_[kSlots];
  std::uint32_t l1_head_[kSlots];
  Bits256 l0_bits_;
  Bits256 l1_bits_;
  /// Wheel nodes always have tick >= cur_tick_, and L0 holds exactly
  /// the cursor's current 256-tick window.
  std::uint64_t cur_tick_ = 0;
  std::size_t wheel_count_ = 0;  // nodes resident in buckets (incl. zombies)
  std::size_t wheel_dead_ = 0;   // cancelled nodes awaiting unlink
  std::uint64_t wheel_sweeps_ = 0;

  struct Peek {
    enum Src : std::uint8_t { kEmpty, kHeap, kWheel };
    bool valid = false;
    Src src = kEmpty;
    SimTime next_at = kNever;
    int l0_slot = -1;                  // src == kWheel: bucket of the min node
    std::uint32_t min_idx = kNilSlot;  // src == kWheel: the min node
    std::uint32_t min_prev = kNilSlot;  // its list predecessor (kNilSlot = head)
  };
  Peek peek_;

  EventHandle schedule_impl(SimTime at, std::uint64_t seq, std::uint32_t target, LifeRef life,
                            EventFn&& fn, bool keyed);

  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;  // scheduled, not yet fired or cancelled
  std::uint32_t last_target_ = kNoTarget;
};

inline bool EventHandle::valid() const { return q_ != nullptr && q_->handle_live(idx_, gen_); }

}  // namespace oftt::sim
