// Network: one Ethernet segment of Fig. 1. A simulation can hold several
// (the paper pairs redundant nodes "via one or dual Ethernet networks"),
// each with independent latency, loss, link failures and partitions.
#pragma once

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/message.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace oftt::sim {

class Simulation;

/// First network both nodes are attached to, or 0 for loopback (a == b),
/// or -1 when the nodes share no segment.
int pick_network(Simulation& sim, int a, int b);

class Network {
 public:
  Network(Simulation& sim, std::string name, int id);

  const std::string& name() const { return name_; }
  int id() const { return id_; }

  void attach(int node_id) { attached_.insert(node_id); }
  void detach(int node_id) { attached_.erase(node_id); }
  bool attached(int node_id) const { return attached_.count(node_id) != 0; }

  /// Delivery delay is uniform in [min, max]. An inverted range throws
  /// (it used to clamp silently, hiding swapped-argument bugs); the
  /// parallel engine additionally refuses to run while any network has
  /// min == 0, since the minimum latency is its conservative lookahead.
  void set_latency(SimTime min, SimTime max);
  SimTime latency_min() const { return latency_min_; }
  SimTime latency_max() const { return latency_max_; }
  /// Serialization delay: bytes/second on the wire; 0 disables (the
  /// default keeps small control traffic latency-dominated, but large
  /// checkpoint images should pay for their size). 10BASE-T Ethernet,
  /// the paper's era, is ~1.25e6 B/s.
  void set_bandwidth(double bytes_per_second) { bandwidth_ = bytes_per_second; }
  double bandwidth() const { return bandwidth_; }
  /// Independent per-datagram loss probability.
  void set_loss(double p) { loss_ = p; }
  double loss() const { return loss_; }

  /// Gilbert-Elliott two-state burst loss, layered on top of the
  /// independent loss above (both can drop a datagram). The channel
  /// alternates between a Good and a Bad state; the state chain advances
  /// one step per send attempt:
  ///
  ///   P(Good -> Bad) = p_enter      loss in Good = loss_good
  ///   P(Bad -> Good) = p_exit       loss in Bad  = loss_bad
  ///
  /// Mean burst length is 1/p_exit sends — the correlated-drop pattern
  /// (switch buffer overruns, interference bursts) that an independent
  /// per-datagram coin can never express. clear_burst_loss() restores
  /// the memoryless channel (and resets the state to Good).
  void set_burst_loss(double p_enter, double p_exit, double loss_good, double loss_bad);
  void clear_burst_loss();
  bool burst_loss_enabled() const { return burst_.enabled; }
  /// Current chain state (tests/monitor introspection): true = Bad.
  bool burst_state_bad() const { return burst_.bad; }
  /// Independent per-datagram duplication probability: with probability p
  /// a surviving datagram is delivered twice, each copy with its own
  /// latency draw (so the duplicate may arrive first). Real switches do
  /// this during spanning-tree reconvergence; protocols must tolerate it.
  void set_duplicate(double p) { dup_ = p; }
  /// Take the whole segment down / up (cable pull at the switch).
  void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }

  /// Per-pair link control (cable pull between two specific nodes).
  void set_link(int a, int b, bool up);
  bool link_up(int a, int b) const;

  /// Partition into groups: traffic crosses only within a group.
  void partition(std::vector<std::vector<int>> groups);
  void heal();

  /// Attempt to send; returns false only for immediately-detectable
  /// refusal (sender not attached). Loss/partition drops are silent.
  bool send(Datagram d);

  /// Parallel-engine hook, called at every run entry: materialize one
  /// decorrelated rng substream (and burst-chain state cell) per source
  /// node, forked by name from the seed. Sends executing on worker
  /// threads then draw from their source node's own stream, so the draw
  /// sequence each node sees is a pure function of that node's history
  /// — identical for any worker count (and any partition).
  void prepare_parallel(std::size_t node_count);

  // Introspection for tests/benches.
  std::uint64_t sent() const { return sent_.load(std::memory_order_relaxed); }
  /// Total payload bytes offered to the segment (including datagrams
  /// later lost) — the traffic-cost figure the detection benchmarks
  /// compare across protocols.
  std::uint64_t bytes_sent() const { return bytes_sent_.load(std::memory_order_relaxed); }
  std::uint64_t delivered() const { return delivered_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  std::uint64_t duplicated() const { return duplicated_.load(std::memory_order_relaxed); }
  std::uint64_t burst_dropped() const { return burst_dropped_.load(std::memory_order_relaxed); }

 private:
  bool reachable(int a, int b) const;
  /// Advance a Gilbert-Elliott chain one step and decide whether this
  /// send attempt is swallowed by the burst channel. The chain state is
  /// the shared channel's in sequential mode, the per-source-node cell
  /// in parallel mode.
  bool burst_drop(Rng& rng, bool& bad);

  Simulation& sim_;
  std::string name_;
  int id_;
  std::set<int> attached_;
  SimTime latency_min_ = microseconds(100);
  SimTime latency_max_ = microseconds(300);
  double bandwidth_ = 0.0;
  double loss_ = 0.0;
  double dup_ = 0.0;
  struct BurstLoss {
    bool enabled = false;
    bool bad = false;  // current chain state
    double p_enter = 0.0, p_exit = 1.0;
    double loss_good = 0.0, loss_bad = 1.0;
  } burst_;
  bool down_ = false;
  std::set<std::pair<int, int>> dead_links_;
  std::map<int, int> partition_group_;  // node -> group (empty = healed)
  Rng rng_;
  // Parallel-mode per-source-node draw streams and burst-chain states
  // (see prepare_parallel). Only sized when a parallel engine runs;
  // sequential mode keeps the shared rng_/burst_.bad exactly as before
  // so every pinned hash is untouched.
  std::vector<Rng> node_rng_;
  std::vector<char> node_burst_bad_;
  // Counters are relaxed atomics: workers on different source nodes
  // send (and deliver) concurrently. Reads are whole-run sums.
  std::atomic<std::uint64_t> sent_{0}, delivered_{0}, dropped_{0}, duplicated_{0};
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> burst_dropped_{0};
  // Pre-resolved metric handles: the per-datagram path must not do
  // string-keyed map lookups.
  obs::Counter ctr_unreachable_;
  obs::Counter ctr_lost_;
  obs::Counter ctr_duplicated_;
  obs::Histogram payload_bytes_;
};

}  // namespace oftt::sim
