// Network: one Ethernet segment of Fig. 1. A simulation can hold several
// (the paper pairs redundant nodes "via one or dual Ethernet networks"),
// each with independent latency, loss, link failures and partitions.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sim/message.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace oftt::sim {

class Simulation;

/// First network both nodes are attached to, or 0 for loopback (a == b),
/// or -1 when the nodes share no segment.
int pick_network(Simulation& sim, int a, int b);

class Network {
 public:
  Network(Simulation& sim, std::string name, int id);

  const std::string& name() const { return name_; }
  int id() const { return id_; }

  void attach(int node_id) { attached_.insert(node_id); }
  void detach(int node_id) { attached_.erase(node_id); }
  bool attached(int node_id) const { return attached_.count(node_id) != 0; }

  /// Delivery delay is uniform in [min, max].
  void set_latency(SimTime min, SimTime max) {
    latency_min_ = min;
    latency_max_ = max < min ? min : max;
  }
  /// Serialization delay: bytes/second on the wire; 0 disables (the
  /// default keeps small control traffic latency-dominated, but large
  /// checkpoint images should pay for their size). 10BASE-T Ethernet,
  /// the paper's era, is ~1.25e6 B/s.
  void set_bandwidth(double bytes_per_second) { bandwidth_ = bytes_per_second; }
  double bandwidth() const { return bandwidth_; }
  /// Independent per-datagram loss probability.
  void set_loss(double p) { loss_ = p; }
  double loss() const { return loss_; }

  /// Gilbert-Elliott two-state burst loss, layered on top of the
  /// independent loss above (both can drop a datagram). The channel
  /// alternates between a Good and a Bad state; the state chain advances
  /// one step per send attempt:
  ///
  ///   P(Good -> Bad) = p_enter      loss in Good = loss_good
  ///   P(Bad -> Good) = p_exit       loss in Bad  = loss_bad
  ///
  /// Mean burst length is 1/p_exit sends — the correlated-drop pattern
  /// (switch buffer overruns, interference bursts) that an independent
  /// per-datagram coin can never express. clear_burst_loss() restores
  /// the memoryless channel (and resets the state to Good).
  void set_burst_loss(double p_enter, double p_exit, double loss_good, double loss_bad);
  void clear_burst_loss();
  bool burst_loss_enabled() const { return burst_.enabled; }
  /// Current chain state (tests/monitor introspection): true = Bad.
  bool burst_state_bad() const { return burst_.bad; }
  /// Independent per-datagram duplication probability: with probability p
  /// a surviving datagram is delivered twice, each copy with its own
  /// latency draw (so the duplicate may arrive first). Real switches do
  /// this during spanning-tree reconvergence; protocols must tolerate it.
  void set_duplicate(double p) { dup_ = p; }
  /// Take the whole segment down / up (cable pull at the switch).
  void set_down(bool down) { down_ = down; }
  bool down() const { return down_; }

  /// Per-pair link control (cable pull between two specific nodes).
  void set_link(int a, int b, bool up);
  bool link_up(int a, int b) const;

  /// Partition into groups: traffic crosses only within a group.
  void partition(std::vector<std::vector<int>> groups);
  void heal();

  /// Attempt to send; returns false only for immediately-detectable
  /// refusal (sender not attached). Loss/partition drops are silent.
  bool send(Datagram d);

  // Introspection for tests/benches.
  std::uint64_t sent() const { return sent_; }
  /// Total payload bytes offered to the segment (including datagrams
  /// later lost) — the traffic-cost figure the detection benchmarks
  /// compare across protocols.
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t burst_dropped() const { return burst_dropped_; }

 private:
  bool reachable(int a, int b) const;
  /// Advance the Gilbert-Elliott chain one step and decide whether this
  /// send attempt is swallowed by the burst channel.
  bool burst_drop();

  Simulation& sim_;
  std::string name_;
  int id_;
  std::set<int> attached_;
  SimTime latency_min_ = microseconds(100);
  SimTime latency_max_ = microseconds(300);
  double bandwidth_ = 0.0;
  double loss_ = 0.0;
  double dup_ = 0.0;
  struct BurstLoss {
    bool enabled = false;
    bool bad = false;  // current chain state
    double p_enter = 0.0, p_exit = 1.0;
    double loss_good = 0.0, loss_bad = 1.0;
  } burst_;
  bool down_ = false;
  std::set<std::pair<int, int>> dead_links_;
  std::map<int, int> partition_group_;  // node -> group (empty = healed)
  Rng rng_;
  std::uint64_t sent_ = 0, delivered_ = 0, dropped_ = 0, duplicated_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t burst_dropped_ = 0;
  // Pre-resolved metric handles: the per-datagram path must not do
  // string-keyed map lookups.
  obs::Counter ctr_unreachable_;
  obs::Counter ctr_lost_;
  obs::Counter ctr_duplicated_;
  obs::Histogram payload_bytes_;
};

}  // namespace oftt::sim
