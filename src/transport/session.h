// Reliable, ordered session transport over sim::Network datagrams.
//
// Before this layer existed, three subsystems each improvised reliability
// on raw datagrams: FTIM carried its own checkpoint acks plus a bounded
// stash for deltas that reordered under latency jitter, the cluster's
// view gossip simply tolerated loss, and the MSMQ queue manager ran a
// fixed 200 ms retry timer. An Endpoint subsumes all three: per-peer
// sessions with sequence numbers, cumulative + selective acks,
// retransmission with exponential backoff and jitter, a reorder buffer,
// an in-flight byte window for backpressure, and session reset keyed on
// peer incarnation so a rebooted node never sees stale frames.
//
// What deliberately does NOT ride this layer: engine heartbeats and
// probes. Failure detection must *feel* loss — a heartbeat that is
// retransmitted until it gets through would mask the very silence the
// detector exists to observe. See DESIGN.md §transport.
//
// Wire format (first payload byte discriminates; values chosen outside
// every MsgKind/MqPacket range so handle() can cheaply reject app frames):
//   data  [u8 0xD1][u64 epoch][u64 seq][u8 flags][blob payload]
//   ack   [u8 0xD2][u64 rx_instance][u64 tx_epoch][u64 cum][u64 sack]
// flags bit 0 marks a *void* frame: a cancelled payload whose sequence
// slot must still advance the receiver's cumulative counter (otherwise a
// cancel would leave a hole that stalls everything behind it).
// `epoch` identifies one tx-session incarnation (monotonic per
// Simulation, never reused); `rx_instance` identifies the receiving
// Endpoint's lifetime, so a sender notices a peer reboot from the first
// ack the reborn peer emits and resets the session — renumbering and
// re-dispatching everything unacknowledged under a fresh epoch.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "obs/metrics.h"
#include "sim/message.h"
#include "sim/process.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace oftt::transport {

/// Frame discriminator bytes. MsgKind stops well below 0xD0 and MqPacket
/// below 0x10; wire_test pins the non-collision.
inline constexpr std::uint8_t kDataFrame = 0xD1;
inline constexpr std::uint8_t kAckFrame = 0xD2;

/// Cheap pre-parse test: does this payload claim to be a transport frame?
inline bool is_transport_frame(const Buffer& payload) {
  return !payload.empty() && (payload[0] == kDataFrame || payload[0] == kAckFrame);
}

/// Traffic classes: independent ack-watermark lanes within one session.
/// Frames of every class share the sequence space, window and queue
/// (ordering across classes is preserved — a decision shipped after a
/// checkpoint arrives after it), but acked_tag(peer, cls) tracks each
/// class separately so checkpoint progress and decision-log progress
/// never clobber each other's watermark.
inline constexpr std::uint8_t kClassControl = 0;
inline constexpr std::uint8_t kClassCheckpoint = 1;
inline constexpr std::uint8_t kClassDecision = 2;
/// Coalesced OPC data-change notification frames — checkpoint-adjacent
/// bulk traffic whose byte meter must not pollute the control lane.
inline constexpr std::uint8_t kClassNotify = 3;
inline constexpr std::uint8_t kTrafficClasses = 4;

/// What to do when the send queue (frames waiting for window space) is
/// full. kReject makes send() return false — FTIM uses that as a signal
/// to fall back to a full checkpoint. kDropOldest sheds the oldest
/// queued frame — right for gossip, where only the newest view matters.
enum class QueuePolicy { kReject, kDropOldest };

struct SessionConfig {
  /// Networks to send on; retransmissions alternate across them (the
  /// paper's dual-Ethernet trick: a retry should not trust the path
  /// that just failed).
  std::vector<int> networks;
  /// Max unacknowledged payload bytes per peer before frames queue.
  /// A frame larger than the whole window is still admitted when the
  /// session is idle, alone.
  std::size_t window_bytes = 256 * 1024;
  /// Max frames queued behind the window per peer.
  std::size_t queue_cap = 1024;
  QueuePolicy queue_policy = QueuePolicy::kReject;
  sim::SimTime rto_initial = sim::milliseconds(50);
  sim::SimTime rto_max = sim::milliseconds(500);
  double rto_backoff = 2.0;
  /// Each retransmission timer is stretched by up to this fraction
  /// (uniform), so synchronized senders decorrelate.
  double rto_jitter = 0.1;
  /// Max out-of-order frames buffered per peer; beyond this, gapped
  /// frames are dropped and retransmission fills the hole.
  std::size_t reorder_cap = 64;
};

/// One reliable endpoint bound to (strand, port). The owner keeps the
/// datagram port bound and funnels arriving datagrams through handle();
/// non-transport traffic on the same port passes through untouched, so
/// session and raw frames can share a port during refactors.
class Endpoint {
 public:
  /// Delivery callback: exactly-once, in-order per (peer, rx lifetime).
  using DeliverFn = std::function<void(int src_node, int network_id, const Buffer& payload)>;
  /// Per-frame ack callback, invoked when the peer acknowledges the
  /// frame. `tag` is the caller's opaque id from send().
  using AckFn = std::function<void(std::uint64_t tag)>;

  Endpoint(sim::Strand& strand, std::string port, SessionConfig config);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  void on_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Feed an arriving datagram. Returns true when the datagram was a
  /// transport frame (consumed — including malformed ones, which are
  /// dropped and counted); false means "not mine, parse it yourself".
  bool handle(const sim::Datagram& d);

  /// Queue a payload for reliable in-order delivery to `peer`. Returns
  /// false only when the queue is full under QueuePolicy::kReject.
  /// `tag` (optional, non-zero) names the frame for acked_tag()/cancel();
  /// `on_acked` (optional) fires when the peer acknowledges it; `cls`
  /// picks the traffic class whose watermark the tag advances.
  bool send(int peer, Buffer payload, std::uint64_t tag = 0, AckFn on_acked = nullptr,
            std::uint8_t cls = kClassControl);

  /// Drop every queued or in-flight frame to `peer` carrying `tag`
  /// (non-zero). Queued frames are removed outright; in-flight ones are
  /// *voided* (their sequence slot still completes, empty, so later
  /// frames are not stalled). Returns how many frames were cancelled.
  /// Frames already delivered are beyond recall.
  std::size_t cancel(int peer, std::uint64_t tag);

  /// Highest tag the peer has acknowledged (its rx has delivered it to
  /// the application). 0 until the first tagged ack. Watermark survives
  /// session resets — it reflects what the peer *processed*, which a
  /// reboot does not un-process. The one-argument form spans every
  /// traffic class (the pre-class behavior); the two-argument form reads
  /// one class's lane.
  std::uint64_t acked_tag(int peer) const;
  std::uint64_t acked_tag(int peer, std::uint8_t cls) const;

  /// Payload bytes admitted per traffic class (first transmissions only,
  /// not retransmits) — the governor's checkpoint/decision byte meters.
  std::uint64_t class_bytes_sent(std::uint8_t cls) const {
    return cls < kTrafficClasses ? class_bytes_[cls] : 0;
  }

  /// Fraction of data transmissions that were retransmissions — the
  /// governor's loss signal. 0 when nothing was sent.
  double observed_loss() const {
    std::uint64_t total = data_sent_ + retransmits_;
    return total == 0 ? 0.0 : static_cast<double>(retransmits_) / static_cast<double>(total);
  }

  // Introspection for callers, tests and benches.
  std::uint64_t data_sent() const { return data_sent_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t duplicate_frames() const { return duplicate_frames_; }
  std::uint64_t stale_frames() const { return stale_frames_; }
  std::uint64_t session_resets() const { return session_resets_; }
  std::uint64_t malformed_frames() const { return malformed_frames_; }
  std::uint64_t queue_drops() const { return queue_drops_; }
  std::size_t inflight_bytes() const;
  std::size_t queued_frames() const;

 private:
  struct QueuedFrame {
    Buffer payload;
    std::uint64_t tag = 0;
    AckFn on_acked;
    std::uint8_t cls = kClassControl;
  };
  struct InflightFrame {
    Buffer payload;
    std::uint64_t tag = 0;
    AckFn on_acked;
    std::uint8_t cls = kClassControl;
    int attempts = 0;
    bool voided = false;
    /// Selectively acknowledged: the peer holds it in its reorder buffer
    /// but has NOT delivered it yet. Suppresses retransmission only —
    /// the frame is retired (and its callback fired) when the peer's
    /// cumulative counter passes it, and it must survive to be
    /// re-dispatched on a session reset: a sacked-but-undelivered frame
    /// dies with the peer's reorder buffer if the peer reboots.
    bool sacked = false;
  };
  struct TxSession {
    std::uint64_t epoch = 0;
    std::uint64_t next_seq = 1;
    /// rx_instance of the peer endpoint we last heard from; 0 = unknown.
    std::uint64_t peer_instance = 0;
    std::map<std::uint64_t, InflightFrame> inflight;  // seq-ordered
    std::deque<QueuedFrame> queue;
    std::size_t inflight_bytes = 0;
    std::uint64_t max_acked_tag = 0;
    std::array<std::uint64_t, kTrafficClasses> max_acked_by_cls{};
  };
  struct ReorderEntry {
    Buffer payload;
    bool voided = false;
  };
  struct RxSession {
    std::uint64_t epoch = 0;
    std::uint64_t cum = 0;  // highest in-order seq delivered
    std::map<std::uint64_t, ReorderEntry> reorder;
  };

  TxSession& tx_session(int peer);
  void admit(int peer, TxSession& ts, QueuedFrame qf);
  void pump(int peer, TxSession& ts);
  void transmit(int peer, TxSession& ts, std::uint64_t seq);
  void on_rto(int peer, std::uint64_t epoch, std::uint64_t seq);
  void reset_session(int peer, TxSession& ts, std::uint64_t new_peer_instance);
  void handle_data(const sim::Datagram& d, BinaryReader& r);
  void handle_ack(const sim::Datagram& d, BinaryReader& r);
  void send_ack(const sim::Datagram& d, const RxSession& rx);
  void retire(TxSession& ts, std::map<std::uint64_t, InflightFrame>::iterator it);

  sim::Strand* strand_;
  sim::Process* process_;
  std::string port_;
  SessionConfig config_;
  sim::Rng rng_;
  /// This endpoint's lifetime id, stamped into every ack we emit.
  std::uint64_t instance_;
  DeliverFn deliver_;
  std::map<int, TxSession> tx_;
  std::map<int, RxSession> rx_;

  std::uint64_t data_sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t duplicate_frames_ = 0;
  std::uint64_t stale_frames_ = 0;
  std::uint64_t session_resets_ = 0;
  std::uint64_t malformed_frames_ = 0;
  std::uint64_t queue_drops_ = 0;
  std::array<std::uint64_t, kTrafficClasses> class_bytes_{};

  obs::Counter ctr_data_sent_;
  obs::Counter ctr_retransmits_;
  obs::Counter ctr_dup_frames_;
  obs::Counter ctr_stale_frames_;
  obs::Counter ctr_session_resets_;
  obs::Gauge gauge_inflight_bytes_;
  obs::Histogram hist_rto_ms_;
  obs::Histogram hist_reorder_depth_;
};

}  // namespace oftt::transport
