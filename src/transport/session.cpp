#include "transport/session.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "obs/event.h"
#include "obs/telemetry.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::transport {

namespace {
/// Selective-ack width: bit i acknowledges seq `cum + 2 + i` (cum + 1 is
/// by definition the missing frame, so it never needs a bit).
constexpr std::uint64_t kSackBits = 64;
constexpr std::uint8_t kFlagVoid = 0x01;
}  // namespace

Endpoint::Endpoint(sim::Strand& strand, std::string port, SessionConfig config)
    : strand_(&strand),
      process_(&strand.process()),
      port_(std::move(port)),
      config_(std::move(config)),
      rng_(strand.process().sim().fork_rng(
          cat("transport:", strand.process().name(), ":", port_))),
      instance_(strand.process().sim().next_epoch()) {
  if (config_.networks.empty()) config_.networks.push_back(0);
  auto& m = process_->sim().telemetry().metrics();
  ctr_data_sent_ = m.counter("transport.data_sent");
  ctr_retransmits_ = m.counter("transport.retransmits");
  ctr_dup_frames_ = m.counter("transport.duplicate_frames");
  ctr_stale_frames_ = m.counter("transport.stale_frames");
  ctr_session_resets_ = m.counter("transport.session_resets");
  gauge_inflight_bytes_ = m.gauge("transport.inflight_bytes");
  hist_rto_ms_ = m.histogram("transport.rto_ms", {1, 2, 5, 10, 25, 50, 100, 250, 500, 1000});
  hist_reorder_depth_ = m.histogram("transport.reorder_depth", {1, 2, 4, 8, 16, 32, 64});
}

Endpoint::~Endpoint() {
  // The registry outlives every endpoint (it is declared first in
  // Simulation); un-count our in-flight bytes so the gauge reflects
  // only live sessions after a process dies.
  for (const auto& [peer, ts] : tx_) {
    gauge_inflight_bytes_.add(-static_cast<std::int64_t>(ts.inflight_bytes));
  }
}

std::size_t Endpoint::inflight_bytes() const {
  std::size_t total = 0;
  for (const auto& [peer, ts] : tx_) total += ts.inflight_bytes;
  return total;
}

std::size_t Endpoint::queued_frames() const {
  std::size_t total = 0;
  for (const auto& [peer, ts] : tx_) total += ts.queue.size();
  return total;
}

std::uint64_t Endpoint::acked_tag(int peer) const {
  auto it = tx_.find(peer);
  return it == tx_.end() ? 0 : it->second.max_acked_tag;
}

std::uint64_t Endpoint::acked_tag(int peer, std::uint8_t cls) const {
  auto it = tx_.find(peer);
  if (it == tx_.end() || cls >= kTrafficClasses) return 0;
  return it->second.max_acked_by_cls[cls];
}

Endpoint::TxSession& Endpoint::tx_session(int peer) {
  auto it = tx_.find(peer);
  if (it != tx_.end()) return it->second;
  TxSession ts;
  ts.epoch = process_->sim().next_epoch();
  return tx_.emplace(peer, std::move(ts)).first->second;
}

bool Endpoint::send(int peer, Buffer payload, std::uint64_t tag, AckFn on_acked,
                    std::uint8_t cls) {
  TxSession& ts = tx_session(peer);
  if (cls >= kTrafficClasses) cls = kClassControl;
  QueuedFrame qf{std::move(payload), tag, std::move(on_acked), cls};
  // An oversized frame is admitted when it would be alone in flight —
  // otherwise nothing larger than the window could ever be sent.
  if (ts.queue.empty() &&
      (ts.inflight.empty() ||
       ts.inflight_bytes + qf.payload.size() <= config_.window_bytes)) {
    admit(peer, ts, std::move(qf));
    return true;
  }
  if (ts.queue.size() >= config_.queue_cap) {
    if (config_.queue_policy == QueuePolicy::kReject) return false;
    ts.queue.pop_front();
    ++queue_drops_;
  }
  ts.queue.push_back(std::move(qf));
  return true;
}

void Endpoint::admit(int peer, TxSession& ts, QueuedFrame qf) {
  std::uint64_t seq = ts.next_seq++;
  auto it = ts.inflight
                .emplace(seq, InflightFrame{std::move(qf.payload), qf.tag,
                                            std::move(qf.on_acked), qf.cls, 0})
                .first;
  ts.inflight_bytes += it->second.payload.size();
  class_bytes_[it->second.cls] += it->second.payload.size();
  gauge_inflight_bytes_.add(static_cast<std::int64_t>(it->second.payload.size()));
  transmit(peer, ts, seq);
}

void Endpoint::pump(int peer, TxSession& ts) {
  while (!ts.queue.empty() &&
         (ts.inflight.empty() ||
          ts.inflight_bytes + ts.queue.front().payload.size() <= config_.window_bytes)) {
    QueuedFrame qf = std::move(ts.queue.front());
    ts.queue.pop_front();
    admit(peer, ts, std::move(qf));
  }
}

void Endpoint::transmit(int peer, TxSession& ts, std::uint64_t seq) {
  auto it = ts.inflight.find(seq);
  if (it == ts.inflight.end()) return;
  InflightFrame& f = it->second;
  BinaryWriter w;
  w.u8(kDataFrame);
  w.u64(ts.epoch);
  w.u64(seq);
  w.u8(f.voided ? kFlagVoid : 0);
  w.blob(f.payload);
  int net = config_.networks[static_cast<std::size_t>(f.attempts) % config_.networks.size()];
  process_->send(net, peer, port_, std::move(w).take(), port_);
  if (f.attempts == 0) {
    ++data_sent_;
    ctr_data_sent_.inc();
  } else {
    ++retransmits_;
    ctr_retransmits_.inc();
  }
  double scale = 1.0;
  for (int i = 0; i < f.attempts && scale * static_cast<double>(config_.rto_initial) <
                                        static_cast<double>(config_.rto_max);
       ++i) {
    scale *= config_.rto_backoff;
  }
  double rto_ns = std::min(static_cast<double>(config_.rto_initial) * scale,
                           static_cast<double>(config_.rto_max));
  hist_rto_ms_.record(static_cast<std::int64_t>(rto_ns / 1e6));
  if (config_.rto_jitter > 0.0) rto_ns *= 1.0 + config_.rto_jitter * rng_.next_double();
  std::uint64_t epoch = ts.epoch;
  strand_->schedule_after(static_cast<sim::SimTime>(rto_ns),
                          [this, peer, epoch, seq] { on_rto(peer, epoch, seq); });
}

void Endpoint::on_rto(int peer, std::uint64_t epoch, std::uint64_t seq) {
  auto t = tx_.find(peer);
  if (t == tx_.end() || t->second.epoch != epoch) return;
  auto it = t->second.inflight.find(seq);
  if (it == t->second.inflight.end()) return;
  if (it->second.sacked) return;  // peer holds it; a cum ack will retire it
  ++it->second.attempts;
  transmit(peer, t->second, seq);
}

bool Endpoint::handle(const sim::Datagram& d) {
  if (!is_transport_frame(d.payload)) return false;
  BinaryReader r(d.payload);
  std::uint8_t kind = r.u8();
  if (kind == kDataFrame) {
    handle_data(d, r);
  } else {
    handle_ack(d, r);
  }
  return true;
}

void Endpoint::handle_data(const sim::Datagram& d, BinaryReader& r) {
  std::uint64_t epoch = r.u64();
  std::uint64_t seq = r.u64();
  std::uint8_t flags = r.u8();
  Buffer payload = r.blob();
  if (r.failed() || !r.at_end() || seq == 0 || epoch == 0) {
    ++malformed_frames_;
    return;
  }
  bool voided = (flags & kFlagVoid) != 0;
  RxSession& rx = rx_[d.src_node];
  if (epoch < rx.epoch) {
    // A frame from a session incarnation we have moved past: the sender
    // rebooted or reset since. Never deliver; never ack (an ack would
    // carry our current epoch, meaningless to that sender).
    ++stale_frames_;
    ctr_stale_frames_.inc();
    return;
  }
  if (epoch > rx.epoch) {
    rx.epoch = epoch;
    rx.cum = 0;
    rx.reorder.clear();
  }
  if (seq <= rx.cum) {
    ++duplicate_frames_;
    ctr_dup_frames_.inc();
    send_ack(d, rx);  // our previous ack may have been lost; re-ack
    return;
  }
  if (seq == rx.cum + 1) {
    rx.cum = seq;
    // Deliver before acking: in the single-threaded sim the application
    // handler runs to completion here, so anything we acknowledge has
    // genuinely been processed (and journaled, for FTIM) by the app.
    if (!voided && deliver_) deliver_(d.src_node, d.network_id, payload);
    auto it = rx.reorder.begin();
    while (it != rx.reorder.end() && it->first == rx.cum + 1) {
      rx.cum = it->first;
      ReorderEntry e = std::move(it->second);
      it = rx.reorder.erase(it);
      if (!e.voided && deliver_) deliver_(d.src_node, d.network_id, e.payload);
    }
  } else if (rx.reorder.count(seq) != 0) {
    ++duplicate_frames_;
    ctr_dup_frames_.inc();
  } else if (rx.reorder.size() < config_.reorder_cap) {
    rx.reorder.emplace(seq, ReorderEntry{std::move(payload), voided});
    hist_reorder_depth_.record(static_cast<std::int64_t>(rx.reorder.size()));
  }
  // else: reorder buffer full — drop; retransmission refills the hole.
  send_ack(d, rx);
}

void Endpoint::send_ack(const sim::Datagram& d, const RxSession& rx) {
  BinaryWriter w;
  w.u8(kAckFrame);
  w.u64(instance_);
  w.u64(rx.epoch);
  w.u64(rx.cum);
  std::uint64_t sack = 0;
  for (const auto& [seq, entry] : rx.reorder) {
    std::uint64_t off = seq - rx.cum;
    if (off >= 2 && off <= kSackBits + 1) sack |= std::uint64_t{1} << (off - 2);
  }
  w.u64(sack);
  int net = d.network_id >= 0 ? d.network_id : config_.networks.front();
  process_->send(net, d.src_node, d.src_port.empty() ? port_ : d.src_port,
                 std::move(w).take(), port_);
}

void Endpoint::handle_ack(const sim::Datagram& d, BinaryReader& r) {
  std::uint64_t rx_instance = r.u64();
  std::uint64_t tx_epoch = r.u64();
  std::uint64_t cum = r.u64();
  std::uint64_t sack = r.u64();
  if (r.failed() || !r.at_end() || rx_instance == 0) {
    ++malformed_frames_;
    return;
  }
  auto t = tx_.find(d.src_node);
  if (t == tx_.end()) return;
  TxSession& ts = t->second;
  if (tx_epoch != ts.epoch) {
    // Ack for an epoch we have already abandoned — a straggler.
    ++stale_frames_;
    ctr_stale_frames_.inc();
    return;
  }
  if (ts.peer_instance == 0) {
    ts.peer_instance = rx_instance;
  } else if (rx_instance != ts.peer_instance) {
    // The peer endpoint was reborn: whatever it acked in a past life is
    // gone from its memory. Renumber and re-dispatch everything
    // unacknowledged under a fresh epoch so it sees a clean stream.
    reset_session(d.src_node, ts, rx_instance);
    return;
  }
  // Only cumulatively covered frames retire — a sack bit means "parked
  // in the peer's reorder buffer", which a peer reboot erases, so the
  // frame must stay re-dispatchable. Sack merely silences its
  // retransmission; the cum+1 hole is never sacked and keeps probing,
  // so a lost final ack cannot stall the session.
  for (std::uint64_t i = 0; i < kSackBits; ++i) {
    if ((sack & (std::uint64_t{1} << i)) == 0) continue;
    auto it = ts.inflight.find(cum + 2 + i);
    if (it != ts.inflight.end()) it->second.sacked = true;
  }
  // Collect first, retire second: an on_acked callback may re-enter
  // send()/cancel() and disturb the map mid-iteration.
  std::vector<std::uint64_t> done;
  for (const auto& [seq, f] : ts.inflight) {
    if (seq > cum) break;
    done.push_back(seq);
  }
  for (std::uint64_t seq : done) {
    auto it = ts.inflight.find(seq);
    if (it != ts.inflight.end()) retire(ts, it);
  }
  pump(d.src_node, ts);
}

void Endpoint::retire(TxSession& ts, std::map<std::uint64_t, InflightFrame>::iterator it) {
  InflightFrame& f = it->second;
  ts.inflight_bytes -= f.payload.size();
  gauge_inflight_bytes_.add(-static_cast<std::int64_t>(f.payload.size()));
  if (f.tag > ts.max_acked_tag && !f.voided) ts.max_acked_tag = f.tag;
  if (f.tag > ts.max_acked_by_cls[f.cls] && !f.voided) ts.max_acked_by_cls[f.cls] = f.tag;
  AckFn fn = std::move(f.on_acked);
  std::uint64_t tag = f.tag;
  bool voided = f.voided;
  ts.inflight.erase(it);
  if (fn && !voided) fn(tag);
}

void Endpoint::reset_session(int peer, TxSession& ts, std::uint64_t new_peer_instance) {
  std::deque<QueuedFrame> pending;
  for (auto& [seq, f] : ts.inflight) {
    gauge_inflight_bytes_.add(-static_cast<std::int64_t>(f.payload.size()));
    if (f.voided) continue;  // a cancelled frame need not survive the reset
    pending.push_back(QueuedFrame{std::move(f.payload), f.tag, std::move(f.on_acked), f.cls});
  }
  for (auto& qf : ts.queue) pending.push_back(std::move(qf));
  ts.inflight.clear();
  ts.inflight_bytes = 0;
  ts.queue = std::move(pending);
  ts.epoch = process_->sim().next_epoch();
  ts.next_seq = 1;
  ts.peer_instance = new_peer_instance;
  ++session_resets_;
  ctr_session_resets_.inc();
  obs::Event e;
  e.kind = obs::EventKind::kSessionReset;
  e.node = process_->node().id();
  e.component = process_->name();
  e.unit = port_;
  e.detail = "peer incarnation changed; re-dispatching unacked frames";
  e.a = static_cast<std::uint64_t>(peer);
  e.b = ts.epoch;
  process_->sim().telemetry().bus().publish(std::move(e));
  pump(peer, ts);
}

std::size_t Endpoint::cancel(int peer, std::uint64_t tag) {
  if (tag == 0) return 0;
  auto t = tx_.find(peer);
  if (t == tx_.end()) return 0;
  TxSession& ts = t->second;
  std::size_t n = 0;
  bool any_live = false;
  for (auto& [seq, f] : ts.inflight) {
    if (f.tag == tag && !f.voided) {
      // Void in place: the sequence slot still completes (empty) so the
      // frames behind it are not stalled by a hole.
      ts.inflight_bytes -= f.payload.size();
      gauge_inflight_bytes_.add(-static_cast<std::int64_t>(f.payload.size()));
      f.payload.clear();
      f.voided = true;
      f.tag = 0;
      f.on_acked = nullptr;
      ++n;
    } else if (!f.voided) {
      any_live = true;
    }
  }
  for (auto it = ts.queue.begin(); it != ts.queue.end();) {
    if (it->tag == tag) {
      it = ts.queue.erase(it);
      ++n;
    } else {
      any_live = true;
      ++it;
    }
  }
  if (!any_live) {
    // Nothing real left: drop the whole session instead of retransmitting
    // void frames at a possibly-dead peer forever. The next send() opens
    // a fresh epoch; the peer's rx state resets on its first frame.
    tx_.erase(t);
    return n;
  }
  if (n > 0) pump(peer, ts);
  return n;
}

}  // namespace oftt::transport
