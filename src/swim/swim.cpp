#include "swim/swim.h"

#include "common/strings.h"

namespace oftt::swim {

const char* member_state_name(MemberState s) {
  switch (s) {
    case MemberState::kAlive: return "alive";
    case MemberState::kSuspect: return "suspect";
    case MemberState::kDead: return "dead";
  }
  return "?";
}

void Update::encode(BinaryWriter& w) const {
  w.i32(node);
  w.u32(incarnation);
  w.u8(static_cast<std::uint8_t>(state));
}

bool Update::decode(BinaryReader& r, Update& out) {
  out.node = r.i32();
  out.incarnation = r.u32();
  std::uint8_t s = r.u8();
  if (r.failed() || s > static_cast<std::uint8_t>(MemberState::kDead)) return false;
  out.state = static_cast<MemberState>(s);
  return true;
}

std::string update_summary(const Update& u) {
  return cat(u.node, " ", member_state_name(u.state), "@", u.incarnation);
}

}  // namespace oftt::swim
