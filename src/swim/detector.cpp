#include "swim/detector.h"

#include <algorithm>
#include <cmath>

namespace oftt::swim {

namespace {
int auto_budget(std::size_t n) {
  // The SWIM dissemination bound: lambda * log2(N) piggyback rides get
  // an update to every member with high probability; lambda = 3.
  int log2n = 1;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  return 3 * std::max(1, log2n);
}
}  // namespace

Detector::Detector(DetectorConfig config, sim::Rng rng)
    : config_(std::move(config)), rng_(rng) {
  budget_ = config_.retransmit_budget > 0 ? config_.retransmit_budget
                                          : auto_budget(config_.members.size());
  for (int node : config_.members) {
    if (node == config_.self) continue;
    members_.emplace(node, MemberInfo{});
  }
  reshuffle();
}

void Detector::reshuffle() {
  order_.clear();
  for (const auto& [node, info] : members_) order_.push_back(node);
  // Fisher-Yates on the injected stream: every member walks its peers
  // in an independent random order, so probe load spreads evenly and no
  // two members gang up on the same victim every period.
  for (std::size_t i = order_.size(); i > 1; --i) {
    std::size_t j = static_cast<std::size_t>(
        rng_.uniform(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order_[i - 1], order_[j]);
  }
  order_pos_ = 0;
}

void Detector::tick(sim::SimTime now, std::vector<Transition>& out) {
  // Close out the previous probe round: a full protocol period elapsed
  // with neither a direct nor an indirect ack — suspect the target at
  // the incarnation we hold for it.
  if (round_.target >= 0 && !round_.acked) {
    auto it = members_.find(round_.target);
    if (it != members_.end() && it->second.state == MemberState::kAlive) {
      apply(Update{round_.target, it->second.incarnation, MemberState::kSuspect}, now, out);
    }
    round_.target = -1;
    round_.acked = true;
  }
  // Expire suspicions whose refutation window closed.
  for (auto& [node, info] : members_) {
    if (info.state == MemberState::kSuspect && now >= info.suspect_deadline) {
      apply(Update{node, info.incarnation, MemberState::kDead}, now, out);
    }
  }
}

int Detector::next_target(sim::SimTime now) {
  // Randomized round-robin (the SWIM paper's time-bounded variant):
  // walk a shuffled traversal of every peer, reshuffling at each wrap,
  // so a failed member is probed within N periods deterministically —
  // not merely in expectation. Confirmed-dead members are skipped; they
  // rejoin via refutation, not probing.
  for (std::size_t scanned = 0; scanned < 2 * order_.size() + 1; ++scanned) {
    if (order_pos_ >= order_.size()) reshuffle();
    if (order_.empty()) return -1;
    int candidate = order_[order_pos_++];
    auto it = members_.find(candidate);
    if (it == members_.end() || it->second.state == MemberState::kDead) continue;
    round_.target = candidate;
    round_.started = now;
    round_.acked = false;
    ++round_.seq;
    return candidate;
  }
  return -1;  // every peer confirmed dead
}

std::vector<int> Detector::proxies(int target, int k) {
  std::vector<int> candidates;
  for (const auto& [node, info] : members_) {
    if (node == target || info.state == MemberState::kDead) continue;
    candidates.push_back(node);
  }
  std::vector<int> picked;
  for (int i = 0; i < k && !candidates.empty(); ++i) {
    std::size_t j = static_cast<std::size_t>(
        rng_.uniform(0, static_cast<std::int64_t>(candidates.size()) - 1));
    picked.push_back(candidates[j]);
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(j));
  }
  return picked;
}

void Detector::on_ack(int from, std::uint64_t seq, sim::SimTime now) {
  heard_from(from, now);
  if (from == round_.target && seq == round_.seq) round_.acked = true;
}

void Detector::heard_from(int node, sim::SimTime now) {
  auto it = members_.find(node);
  if (it != members_.end()) it->second.last_heard = now;
}

void Detector::absorb(const Update& u, sim::SimTime now, std::vector<Transition>& out) {
  if (u.node != config_.self && members_.find(u.node) == members_.end()) {
    return;  // not a configured member — static membership, ignore
  }
  apply(u, now, out);
}

void Detector::apply(const Update& u, sim::SimTime now, std::vector<Transition>& out) {
  if (u.node == config_.self) {
    // Someone accuses US. The SWIM refutation: bump our incarnation
    // past the accusation and disseminate the alive assertion — the
    // higher incarnation supersedes the suspicion (or the premature
    // death certificate) at every member it reaches.
    if (u.state == MemberState::kAlive || u.incarnation < self_incarnation_) return;
    self_incarnation_ = u.incarnation + 1;
    enqueue(Update{config_.self, self_incarnation_, MemberState::kAlive});
    Transition tr;
    tr.node = config_.self;
    tr.incarnation = self_incarnation_;
    tr.from = u.state;
    tr.to = MemberState::kAlive;
    tr.refuted_death = u.state == MemberState::kDead;
    out.push_back(tr);
    return;
  }
  MemberInfo& m = members_.at(u.node);
  if (!u.supersedes(m.incarnation, m.state)) return;
  Transition tr;
  tr.node = u.node;
  tr.incarnation = u.incarnation;
  tr.from = m.state;
  tr.to = u.state;
  if (m.state == MemberState::kSuspect) tr.suspected_for = now - m.suspect_since;
  tr.refuted_death = m.state == MemberState::kDead && u.state == MemberState::kAlive;
  m.incarnation = u.incarnation;
  m.state = u.state;
  switch (u.state) {
    case MemberState::kAlive:
      m.suspect_since = 0;
      m.suspect_deadline = 0;
      // An alive assertion is proof of life even when relayed: the
      // incarnation bump originated at the member itself.
      m.last_heard = std::max(m.last_heard, now);
      break;
    case MemberState::kSuspect:
      m.suspect_since = now;
      m.suspect_deadline = now + config_.suspicion_timeout;
      break;
    case MemberState::kDead:
      m.suspect_since = 0;
      m.suspect_deadline = 0;
      break;
  }
  enqueue(Update{u.node, u.incarnation, u.state});
  if (tr.from != tr.to) out.push_back(tr);
}

void Detector::enqueue(const Update& u) {
  for (auto& b : buffer_) {
    if (b.update.node != u.node) continue;
    if (u == b.update) return;  // already disseminating exactly this
    if (u.supersedes(b.update.incarnation, b.update.state)) {
      b.update = u;
      b.sends = 0;  // fresh news restarts the ride budget
    }
    return;  // an older assertion never displaces a newer one
  }
  buffer_.push_back(Buffered{u, 0});
}

std::vector<Update> Detector::piggyback() {
  // Freshness-prioritized: least-travelled updates first (they have the
  // most members left to infect), node id as the deterministic
  // tie-break. stable_sort keeps equal entries in insertion order.
  std::stable_sort(buffer_.begin(), buffer_.end(), [](const Buffered& a, const Buffered& b) {
    if (a.sends != b.sends) return a.sends < b.sends;
    return a.update.node < b.update.node;
  });
  std::vector<Update> out;
  for (auto& b : buffer_) {
    if (out.size() >= config_.max_piggyback) break;
    out.push_back(b.update);
    ++b.sends;
  }
  buffer_.erase(std::remove_if(buffer_.begin(), buffer_.end(),
                               [this](const Buffered& b) { return b.sends >= budget_; }),
                buffer_.end());
  return out;
}

std::vector<Update> Detector::piggyback_for(int peer) {
  std::vector<Update> out = piggyback();
  auto it = members_.find(peer);
  if (it == members_.end() || it->second.state == MemberState::kAlive) return out;
  Update accusation{peer, it->second.incarnation, it->second.state};
  for (const Update& u : out) {
    if (u.node == peer) return out;  // already riding this frame
  }
  if (out.size() >= config_.max_piggyback && !out.empty()) out.pop_back();
  out.insert(out.begin(), accusation);
  return out;
}

void Detector::announce(int node) {
  if (node == config_.self) {
    enqueue(Update{config_.self, self_incarnation_, MemberState::kAlive});
    return;
  }
  auto it = members_.find(node);
  if (it == members_.end()) return;
  enqueue(Update{node, it->second.incarnation, it->second.state});
}

MemberState Detector::state(int node) const {
  if (node == config_.self) return MemberState::kAlive;
  auto it = members_.find(node);
  return it == members_.end() ? MemberState::kDead : it->second.state;
}

std::uint32_t Detector::incarnation(int node) const {
  if (node == config_.self) return self_incarnation_;
  auto it = members_.find(node);
  return it == members_.end() ? 0 : it->second.incarnation;
}

sim::SimTime Detector::last_heard(int node) const {
  auto it = members_.find(node);
  return it == members_.end() ? 0 : it->second.last_heard;
}

sim::SimTime Detector::suspect_since(int node) const {
  auto it = members_.find(node);
  return it == members_.end() || it->second.state != MemberState::kSuspect
             ? 0
             : it->second.suspect_since;
}

}  // namespace oftt::swim
