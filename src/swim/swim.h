// SWIM-style membership state: the alive / suspect / confirmed-dead
// lifecycle with incarnation-numbered refutation, and the piggybacked
// membership update that disseminates it.
//
// Background (Das/Gupta/Motivala, "SWIM: Scalable Weakly-consistent
// Infection-style Process Group Membership Protocol"): instead of every
// member heartbeating every other member (O(N^2) messages per period),
// each member probes ONE random peer per protocol period and falls back
// to k indirect probes through random proxies before suspecting it.
// Membership changes ride as bounded piggyback on those probe/ack
// frames — epidemic dissemination reaches every member in O(log N)
// periods while per-node message cost stays O(1).
//
// Layering: swim sits beside cluster (below core, above common/sim).
// It knows nothing about engines, datagrams or wire framing — core
// owns the frames (SwimProbe/SwimAck/SwimPingReq in core/wire) and
// drives the Detector; cluster keeps quorum-gated promotion. Swim only
// replaces *how liveness is learned*.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace oftt::swim {

/// Lifecycle of a member as seen by one observer. The numeric value
/// travels on the wire and orders precedence (see `supersedes`) —
/// append, never renumber.
enum class MemberState : std::uint8_t {
  kAlive = 0,
  /// Failed a direct probe and k indirect probes; presumed up until the
  /// suspicion timeout elapses (the grace window in which the accused
  /// member can refute with a higher incarnation).
  kSuspect = 1,
  /// Suspicion timeout elapsed without refutation: declared failed.
  kDead = 2,
};

const char* member_state_name(MemberState s);

/// One piggybacked membership assertion: "node is <state> at
/// <incarnation>". Joins are alive updates, suspicions/confirmations
/// carry the incarnation they accuse, refutations are alive updates at
/// a freshly bumped incarnation.
struct Update {
  int node = -1;
  std::uint32_t incarnation = 0;
  MemberState state = MemberState::kAlive;

  /// SWIM precedence: an update wins against the current (incarnation,
  /// state) when its incarnation is strictly newer, or — at the same
  /// incarnation — its state is strictly graver (alive < suspect <
  /// dead). A higher-incarnation alive therefore refutes both suspicion
  /// and confirmed death, which is also how a rebooted member readmits
  /// itself without a separate join protocol.
  bool supersedes(std::uint32_t cur_incarnation, MemberState cur_state) const {
    if (incarnation != cur_incarnation) return incarnation > cur_incarnation;
    return static_cast<std::uint8_t>(state) > static_cast<std::uint8_t>(cur_state);
  }

  void encode(BinaryWriter& w) const;
  static bool decode(BinaryReader& r, Update& out);

  bool operator==(const Update&) const = default;
};

/// One-line operator rendering: "7 alive@3".
std::string update_summary(const Update& u);

}  // namespace oftt::swim
