// Detector: one member's SWIM failure-detection state machine.
//
// The detector is deliberately transport-free: it owns WHO to probe,
// WHAT each received update means, and WHEN a suspect becomes dead —
// the caller (core::Engine in cluster mode) owns the clock, the frames
// and the sockets, and drives the detector once per protocol period:
//
//   period start   tick(now)            expire suspicions, close out the
//                                       previous probe round (unacked ->
//                                       suspect), emit transitions
//                  next_target()        random-round-robin probe victim
//                  piggyback()          bounded update batch for frames
//   probe timeout  proxies(target, k)   random indirect-probe relays
//   any frame      heard_from / absorb  freshness + update precedence
//   ack arrives    on_ack(from, seq)
//
// Determinism: the only randomness is the injected sim::Rng fork, drawn
// from exclusively here (target shuffles, proxy picks), so adding swim
// to a deployment never perturbs any other module's stream.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"
#include "swim/swim.h"

namespace oftt::swim {

struct DetectorConfig {
  int self = -1;
  /// All configured members, self included (the static membership the
  /// cluster quorum is computed over; swim tracks liveness, not joins
  /// of unknown nodes).
  std::vector<int> members;
  /// Direct-probe ack deadline before escalating to indirect probes.
  sim::SimTime probe_timeout = 0;
  /// suspect -> confirmed-dead grace (the refutation window).
  sim::SimTime suspicion_timeout = 0;
  /// Indirect probes (k) fanned out through random proxies.
  int indirect_probes = 3;
  /// Max updates piggybacked per frame.
  std::size_t max_piggyback = 6;
  /// How many frames each update rides before it is dropped from the
  /// buffer; 0 = auto (3 * ceil(log2 N), the epidemic-dissemination
  /// budget from the SWIM paper).
  int retransmit_budget = 0;
};

/// A state change the caller should surface (events, metrics, view).
struct Transition {
  int node = -1;
  std::uint32_t incarnation = 0;
  MemberState from = MemberState::kAlive;
  MemberState to = MemberState::kAlive;
  /// For suspect -> alive/dead: how long the suspicion lasted.
  sim::SimTime suspected_for = 0;
  /// True when this transition refutes a confirmed death — a member we
  /// declared dead proved alive (false positive, or a rebooted member
  /// readmitting itself).
  bool refuted_death = false;
};

class Detector {
 public:
  Detector(DetectorConfig config, sim::Rng rng);

  // -- protocol period driver -----------------------------------------

  /// Advance time: expire suspicion deadlines (suspect -> dead) and
  /// close out an unresolved probe round (target -> suspect). Appends
  /// every state change to `out`. Call once at the top of each period.
  void tick(sim::SimTime now, std::vector<Transition>& out);

  /// Pick this period's direct-probe target (randomized round-robin
  /// over every non-dead peer — each peer is probed once per traversal,
  /// order reshuffled every wrap). Returns -1 when no peer qualifies.
  /// Opens a new probe round; the previous round must have been closed
  /// by tick().
  int next_target(sim::SimTime now);

  /// The current round's probe sequence number (echoed in acks).
  std::uint64_t probe_seq() const { return round_.seq; }
  /// True while the current round's target has not acked.
  bool probe_outstanding() const { return round_.target >= 0 && !round_.acked; }
  int probe_target() const { return round_.target; }

  /// k random live proxies (≠ self, ≠ target) for the indirect phase.
  std::vector<int> proxies(int target, int k);

  // -- inputs ----------------------------------------------------------

  /// An ack from `from` for probe `seq` (direct, or relayed by a proxy).
  void on_ack(int from, std::uint64_t seq, sim::SimTime now);

  /// Any frame from `node` proves it alive *now*. Refreshes last_heard;
  /// does NOT override suspect/dead state (state changes go through
  /// update precedence so refutation stays incarnation-ordered).
  void heard_from(int node, sim::SimTime now);

  /// Apply one piggybacked update with SWIM precedence. Appends any
  /// resulting state change to `out`. An update accusing *self* of
  /// suspicion/death bumps our incarnation and enqueues the alive
  /// refutation.
  void absorb(const Update& u, sim::SimTime now, std::vector<Transition>& out);

  // -- outputs ---------------------------------------------------------

  /// Up to max_piggyback updates, freshest (least-sent) first; charges
  /// one send to each returned update and drops exhausted ones.
  std::vector<Update> piggyback();

  /// piggyback() plus a guarantee: when we hold a suspect/dead verdict
  /// about `peer` itself, that accusation leads the batch (budget-free)
  /// — the accused must hear it on first contact so refutation happens
  /// in one round trip instead of waiting on epidemic luck.
  std::vector<Update> piggyback_for(int peer);

  /// Queue an update about `node`'s current local state (joins at
  /// startup, or a caller-forced re-announcement).
  void announce(int node);

  // -- state queries ---------------------------------------------------

  MemberState state(int node) const;
  std::uint32_t incarnation(int node) const;
  sim::SimTime last_heard(int node) const;
  /// Alive or suspect (suspects are presumed up until confirmed).
  bool presumed_live(int node) const { return state(node) != MemberState::kDead; }
  std::uint32_t self_incarnation() const { return self_incarnation_; }
  /// When `node` entered suspicion (0 when not suspect).
  sim::SimTime suspect_since(int node) const;
  const DetectorConfig& config() const { return config_; }
  /// Effective per-update retransmit budget (resolves the 0 = auto).
  int budget() const { return budget_; }
  std::size_t update_buffer_size() const { return buffer_.size(); }

 private:
  struct MemberInfo {
    MemberState state = MemberState::kAlive;
    std::uint32_t incarnation = 0;
    sim::SimTime last_heard = 0;
    sim::SimTime suspect_since = 0;
    sim::SimTime suspect_deadline = 0;
  };
  struct Buffered {
    Update update;
    int sends = 0;
  };
  struct ProbeRound {
    int target = -1;
    std::uint64_t seq = 0;
    sim::SimTime started = 0;
    bool acked = true;
  };

  /// Adopt (incarnation, state) for `node` if it supersedes; record the
  /// transition, restart/clear suspicion clocks, enqueue dissemination.
  void apply(const Update& u, sim::SimTime now, std::vector<Transition>& out);
  void enqueue(const Update& u);
  void reshuffle();

  DetectorConfig config_;
  sim::Rng rng_;
  int budget_ = 0;
  std::uint32_t self_incarnation_ = 0;
  std::map<int, MemberInfo> members_;  // peers only (self excluded)
  std::vector<Buffered> buffer_;
  std::vector<int> order_;  // current traversal of probe targets
  std::size_t order_pos_ = 0;
  ProbeRound round_;
};

}  // namespace oftt::swim
