// Thread-pool sweep over independent runs. Extracted from the bench
// harness (bench/bench_util.h keeps aliases) so in-tree subsystems —
// the chaos campaign runner evaluating a schedule population — share
// the same pool and the same determinism contract.
//
// Each run must be self-contained: seed everything from the index and
// build its own Simulation (the sim kernel is single-threaded by
// design; the sweep parallelises across whole simulations, never
// within one). Runs claim indices from an atomic counter, so thread
// count and scheduling affect only wall-clock: the result vector is
// byte-identical for OFTT_BENCH_THREADS=1 and =N.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <type_traits>
#include <vector>

namespace oftt {

/// Worker-thread count for sweep_seeds: OFTT_BENCH_THREADS if set,
/// otherwise hardware_concurrency, clamped to [1, runs].
inline int sweep_threads(int runs) {
  const char* v = std::getenv("OFTT_BENCH_THREADS");
  int t = (v != nullptr && v[0] != '\0') ? std::atoi(v)
                                         : static_cast<int>(std::thread::hardware_concurrency());
  if (t < 1) t = 1;
  return std::min(t, std::max(runs, 1));
}

/// Run `fn(run_index)` for every index in [0, runs) on a thread pool
/// and return the results in index order.
template <typename Fn>
auto sweep_seeds(int runs, Fn fn) -> std::vector<std::invoke_result_t<Fn&, int>> {
  using R = std::invoke_result_t<Fn&, int>;
  std::vector<R> out(static_cast<std::size_t>(std::max(runs, 0)));
  int workers = sweep_threads(runs);
  if (workers <= 1) {
    for (int i = 0; i < runs; ++i) out[static_cast<std::size_t>(i)] = fn(i);
    return out;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (int i = next.fetch_add(1); i < runs; i = next.fetch_add(1)) {
        out[static_cast<std::size_t>(i)] = fn(i);
      }
    });
  }
  for (auto& t : pool) t.join();
  return out;
}

}  // namespace oftt
