#include "common/logging.h"

#include <cstdio>

namespace oftt {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](const LogRecord& r) {
    std::fprintf(stderr, "[%12.6f] %-5s %-24s %s\n",
                 static_cast<double>(r.sim_time_ns) / 1e9, log_level_name(r.level),
                 r.component.c_str(), r.message.c_str());
  };
}

Logger::Sink Logger::set_sink(Sink sink) {
  auto old = std::move(sink_);
  sink_ = std::move(sink);
  return old;
}

void Logger::log(LogLevel level, std::string component, std::string message) {
  if (!enabled(level) || !sink_) return;
  LogRecord r;
  r.sim_time_ns = clock_ ? clock_() : 0;
  r.level = level;
  r.component = std::move(component);
  r.message = std::move(message);
  sink_(r);
}

}  // namespace oftt
