#include "common/logging.h"

#include <cstdio>

namespace oftt {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace {
// Per-thread virtual-time source. Parallel seed sweeps run one
// Simulation per worker thread; each installs its own clock on entry
// and clears it in its Telemetry destructor without racing the others.
thread_local Logger::ClockFn t_clock;
// Per-thread merge-key source and ordered buffer: installed by
// parallel-engine workers so their lines carry (node, seq) and collect
// locally instead of racing on the sink (see LogRecord).
thread_local Logger::OriginFn t_origin;
thread_local std::vector<LogRecord>* t_buffer = nullptr;
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_clock(ClockFn clock) { t_clock = std::move(clock); }

void Logger::set_origin(OriginFn origin) { t_origin = std::move(origin); }

void Logger::set_buffer(std::vector<LogRecord>* buf) { t_buffer = buf; }

void Logger::deliver(const LogRecord& r) {
  if (sink_) sink_(r);
}

Logger::Logger() {
  sink_ = [](const LogRecord& r) {
    std::fprintf(stderr, "[%12.6f] %-5s %-24s %s\n",
                 static_cast<double>(r.sim_time_ns) / 1e9, log_level_name(r.level),
                 r.component.c_str(), r.message.c_str());
  };
}

Logger::Sink Logger::set_sink(Sink sink) {
  auto old = std::move(sink_);
  sink_ = std::move(sink);
  return old;
}

void Logger::log(LogLevel level, std::string component, std::string message) {
  if (!enabled(level) || !sink_) return;
  LogRecord r;
  r.sim_time_ns = t_clock ? t_clock() : 0;
  r.level = level;
  r.component = std::move(component);
  r.message = std::move(message);
  if (t_origin) {
    auto [node, seq] = t_origin();
    r.node = node;
    r.seq = seq;
  }
  if (t_buffer != nullptr) {
    t_buffer->push_back(std::move(r));
    return;
  }
  sink_(r);
}

}  // namespace oftt
