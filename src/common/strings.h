// String helpers shared by all OFTT modules.
//
// gcc 12 does not ship std::format, so `cat(...)` provides the small
// subset we need: stream-style concatenation into a std::string.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace oftt {

/// Concatenate all arguments using operator<< into one string.
template <typename... Args>
std::string cat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Render a byte count like "4.0 KiB" / "16 MiB" for human-facing tables.
std::string human_bytes(std::uint64_t bytes);

}  // namespace oftt
