// GUID: 128-bit identifiers for COM classes (CLSID) and interfaces (IID),
// with the canonical {8-4-4-4-12} text form.
//
// Real COM GUIDs come from uuidgen; for a deterministic simulation we
// derive them from names (FNV-1a over the name, expanded to 128 bits),
// which keeps traces and tests reproducible across runs.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

namespace oftt {

struct Guid {
  std::array<std::uint8_t, 16> bytes{};

  auto operator<=>(const Guid&) const = default;

  bool is_null() const {
    for (auto b : bytes)
      if (b != 0) return false;
    return true;
  }

  /// Canonical lowercase "{xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx}".
  std::string to_string() const;

  /// Deterministically derive a GUID from a name ("IID_IOPCServer").
  static Guid from_name(std::string_view name);

  /// Parse the canonical form (with or without braces); returns the null
  /// GUID on malformed input.
  static Guid parse(std::string_view text);
};

struct GuidHash {
  std::size_t operator()(const Guid& g) const {
    // The bytes are already well-mixed (FNV output or random); fold them.
    std::uint64_t lo = 0, hi = 0;
    for (int i = 0; i < 8; ++i) lo = (lo << 8) | g.bytes[static_cast<std::size_t>(i)];
    for (int i = 8; i < 16; ++i) hi = (hi << 8) | g.bytes[static_cast<std::size_t>(i)];
    return static_cast<std::size_t>(lo ^ (hi * 0x9e3779b97f4a7c15ull));
  }
};

using Iid = Guid;    // interface id
using Clsid = Guid;  // class id

}  // namespace oftt
