// HRESULT: the COM error channel, reproduced with the facility/severity
// layout of the Windows SDK plus the OFTT-specific facility the toolkit
// uses for its own failures.
#pragma once

#include <cstdint>
#include <string>

namespace oftt {

using HRESULT = std::int32_t;

constexpr bool SUCCEEDED(HRESULT hr) { return hr >= 0; }
constexpr bool FAILED(HRESULT hr) { return hr < 0; }

constexpr HRESULT make_hresult(unsigned severity, unsigned facility, unsigned code) {
  return static_cast<HRESULT>((severity << 31) | (facility << 16) | code);
}

constexpr unsigned hresult_facility(HRESULT hr) {
  return (static_cast<std::uint32_t>(hr) >> 16) & 0x1fffu;
}
constexpr unsigned hresult_code(HRESULT hr) { return static_cast<std::uint32_t>(hr) & 0xffffu; }

// Standard codes (values match the Windows SDK where the SDK defines them).
constexpr HRESULT S_OK = 0;
constexpr HRESULT S_FALSE = 1;
constexpr HRESULT E_FAIL = static_cast<HRESULT>(0x80004005);
constexpr HRESULT E_NOINTERFACE = static_cast<HRESULT>(0x80004002);
constexpr HRESULT E_POINTER = static_cast<HRESULT>(0x80004003);
constexpr HRESULT E_ABORT = static_cast<HRESULT>(0x80004004);
constexpr HRESULT E_NOTIMPL = static_cast<HRESULT>(0x80004001);
constexpr HRESULT E_UNEXPECTED = static_cast<HRESULT>(0x8000FFFF);
constexpr HRESULT E_INVALIDARG = static_cast<HRESULT>(0x80070057);
constexpr HRESULT E_OUTOFMEMORY = static_cast<HRESULT>(0x8007000E);
constexpr HRESULT REGDB_E_CLASSNOTREG = static_cast<HRESULT>(0x80040154);
constexpr HRESULT CLASS_E_NOAGGREGATION = static_cast<HRESULT>(0x80040110);
// RPC-facility codes surfaced by the DCOM layer (paper §3.3: "its RPC
// service does not behave well in the presence of failures").
constexpr HRESULT RPC_E_DISCONNECTED = static_cast<HRESULT>(0x80010108);
constexpr HRESULT RPC_E_SERVERFAULT = static_cast<HRESULT>(0x80010105);
constexpr HRESULT RPC_E_CALL_REJECTED = static_cast<HRESULT>(0x80010001);
constexpr HRESULT RPC_E_TIMEOUT = static_cast<HRESULT>(0x8001011F);
constexpr HRESULT CO_E_SERVER_EXEC_FAILURE = static_cast<HRESULT>(0x80080005);

// OFTT facility: failures of the fault-tolerance middleware itself.
constexpr unsigned FACILITY_OFTT = 0x0F7;
constexpr HRESULT OFTT_E_NOT_INITIALIZED = make_hresult(1, FACILITY_OFTT, 0x001);
constexpr HRESULT OFTT_E_ALREADY_INITIALIZED = make_hresult(1, FACILITY_OFTT, 0x002);
constexpr HRESULT OFTT_E_NO_PEER = make_hresult(1, FACILITY_OFTT, 0x003);
constexpr HRESULT OFTT_E_NOT_PRIMARY = make_hresult(1, FACILITY_OFTT, 0x004);
constexpr HRESULT OFTT_E_CHECKPOINT_FAILED = make_hresult(1, FACILITY_OFTT, 0x005);
constexpr HRESULT OFTT_E_WATCHDOG_EXPIRED = make_hresult(1, FACILITY_OFTT, 0x006);
constexpr HRESULT OFTT_E_BAD_HANDLE = make_hresult(1, FACILITY_OFTT, 0x007);
constexpr HRESULT OFTT_E_ENGINE_DOWN = make_hresult(1, FACILITY_OFTT, 0x008);
constexpr HRESULT OFTT_E_SWITCHOVER_REFUSED = make_hresult(1, FACILITY_OFTT, 0x009);

/// Human-readable rendering for logs and the System Monitor.
std::string hresult_to_string(HRESULT hr);

}  // namespace oftt
