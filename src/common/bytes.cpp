#include "common/bytes.h"

namespace oftt {

std::uint64_t fnv64(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv64(const Buffer& b) { return fnv64(b.data(), b.size()); }

}  // namespace oftt
