#include "common/bytes.h"

namespace oftt {

std::uint64_t fnv64(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv64(const Buffer& b) { return fnv64(b.data(), b.size()); }

namespace {
struct Crc32Table {
  std::uint32_t t[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
  }
};
}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const Crc32Table table;
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) c = table.t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(const Buffer& b) { return crc32(b.data(), b.size()); }

}  // namespace oftt
