#include "common/guid.h"

#include <cctype>
#include <cstdio>

namespace oftt {
namespace {

// Two FNV-1a passes with different offsets give us 128 independent-ish
// bits from one name. Collisions across the few hundred names in this
// codebase are effectively impossible and tests would catch one.
std::uint64_t fnv1a(std::string_view s, std::uint64_t offset) {
  std::uint64_t h = offset;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string Guid::to_string() const {
  char buf[40];
  std::snprintf(buf, sizeof buf,
                "{%02x%02x%02x%02x-%02x%02x-%02x%02x-%02x%02x-%02x%02x%02x%02x%02x%02x}",
                bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
                bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14],
                bytes[15]);
  return buf;
}

Guid Guid::from_name(std::string_view name) {
  Guid g;
  std::uint64_t lo = fnv1a(name, 0xcbf29ce484222325ull);
  std::uint64_t hi = fnv1a(name, 0x84222325cbf29ce4ull);
  for (int i = 0; i < 8; ++i) {
    g.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(lo >> (8 * (7 - i)));
    g.bytes[static_cast<std::size_t>(8 + i)] = static_cast<std::uint8_t>(hi >> (8 * (7 - i)));
  }
  return g;
}

Guid Guid::parse(std::string_view text) {
  if (!text.empty() && text.front() == '{' && text.back() == '}') {
    text = text.substr(1, text.size() - 2);
  }
  Guid g;
  std::size_t out = 0;
  int hi_nibble = -1;
  for (char c : text) {
    if (c == '-') continue;
    int v = hex_val(c);
    if (v < 0 || out >= 16) return Guid{};  // malformed
    if (hi_nibble < 0) {
      hi_nibble = v;
    } else {
      g.bytes[out++] = static_cast<std::uint8_t>((hi_nibble << 4) | v);
      hi_nibble = -1;
    }
  }
  if (out != 16 || hi_nibble >= 0) return Guid{};
  return g;
}

}  // namespace oftt
