// Logging with virtual-time timestamps.
//
// The whole system runs on simulated time, so the logger takes its
// timestamp from an injectable clock callback (the simulation installs
// one). Default sink is stderr; tests install a capturing sink to make
// assertions about recovery traces.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace oftt {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

const char* log_level_name(LogLevel level);

struct LogRecord {
  std::int64_t sim_time_ns = 0;
  LogLevel level = LogLevel::kInfo;
  std::string component;  // e.g. "engine/nodeA", "ftim/calltrack"
  std::string message;
  /// Merge key for parallel-engine runs: the originating node and that
  /// node's monotone line counter. Sorting buffered lines by
  /// (sim_time_ns, node, seq) at the window barrier reproduces the
  /// sequential emission order byte for byte. Sequential runs leave the
  /// defaults (-1, 0) and emit straight to the sink.
  int node = -1;
  std::uint64_t seq = 0;
};

class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;
  using ClockFn = std::function<std::int64_t()>;
  /// Returns (node, seq) for the line being stamped.
  using OriginFn = std::function<std::pair<int, std::uint64_t>()>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Replace the sink; returns the previous one so tests can restore it.
  Sink set_sink(Sink sink);

  /// Install the virtual-time source (nullptr resets to "0"). The
  /// clock is thread-local: each seed-sweep worker thread runs its own
  /// Simulation, and its log lines must stamp that simulation's virtual
  /// time, not whichever sim last called set_clock globally.
  void set_clock(ClockFn clock);

  /// Thread-local, like the clock: stamps (node, seq) on each record.
  /// Parallel-engine workers install one; nullptr resets.
  void set_origin(OriginFn origin);
  /// Thread-local ordered-buffer mode: records are appended to `buf`
  /// instead of reaching the sink; the parallel engine merge-sorts the
  /// per-worker buffers at each barrier and replays them via deliver().
  /// nullptr restores direct sink emission.
  void set_buffer(std::vector<LogRecord>* buf);

  /// Hand a fully-stamped record to the sink (the merge-flush path —
  /// no re-stamping).
  void deliver(const LogRecord& r);

  bool enabled(LogLevel level) const { return level >= level_; }
  void log(LogLevel level, std::string component, std::string message);

 private:
  Logger();
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
  // The virtual clock lives in a thread_local in logging.cpp (see
  // set_clock); the Logger singleton itself holds no clock state.
};

namespace log_detail {
template <typename... Args>
void emit(LogLevel level, std::string_view component, Args&&... args) {
  if (!Logger::instance().enabled(level)) return;
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  Logger::instance().log(level, std::string(component), os.str());
}
}  // namespace log_detail

#define OFTT_LOG_TRACE(component, ...) \
  ::oftt::log_detail::emit(::oftt::LogLevel::kTrace, component, __VA_ARGS__)
#define OFTT_LOG_DEBUG(component, ...) \
  ::oftt::log_detail::emit(::oftt::LogLevel::kDebug, component, __VA_ARGS__)
#define OFTT_LOG_INFO(component, ...) \
  ::oftt::log_detail::emit(::oftt::LogLevel::kInfo, component, __VA_ARGS__)
#define OFTT_LOG_WARN(component, ...) \
  ::oftt::log_detail::emit(::oftt::LogLevel::kWarn, component, __VA_ARGS__)
#define OFTT_LOG_ERROR(component, ...) \
  ::oftt::log_detail::emit(::oftt::LogLevel::kError, component, __VA_ARGS__)

}  // namespace oftt
