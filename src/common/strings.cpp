#include "common/strings.h"

#include <cctype>
#include <cstdint>
#include <cstdio>

namespace oftt {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 3) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

}  // namespace oftt
