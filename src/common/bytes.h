// Byte buffers and binary serialization.
//
// Every wire format in the repo (ORPC marshaling, MSMQ payloads, OFTT
// checkpoint images, heartbeats) is built on BinaryWriter/BinaryReader:
// little-endian fixed-width integers, length-prefixed strings and blobs.
// Readers are defensive: reads past the end set an error flag rather
// than touching out-of-bounds memory, because a fault-tolerance layer
// must survive truncated messages from half-dead peers.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/guid.h"

namespace oftt {

using Buffer = std::vector<std::uint8_t>;

class BinaryWriter {
 public:
  BinaryWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void blob(const Buffer& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b.data(), b.size());
  }
  void guid(const Guid& g) { raw(g.bytes.data(), g.bytes.size()); }
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  const Buffer& data() const& { return buf_; }
  Buffer take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Buffer buf_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const Buffer& buf) : data_(buf.data()), size_(buf.size()) {}
  BinaryReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(take_le<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_le<std::uint64_t>()); }
  double f64() {
    std::uint64_t bits = take_le<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }

  std::string str() {
    std::uint32_t n = u32();
    if (!require(n)) return {};
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  Buffer blob() {
    std::uint32_t n = u32();
    if (!require(n)) return {};
    Buffer b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }
  Guid guid() {
    Guid g;
    if (!require(16)) return g;
    std::memcpy(g.bytes.data(), data_ + pos_, 16);
    pos_ += 16;
    return g;
  }

  /// True once any read ran past the end; all subsequent reads return
  /// zero values. Callers validate once at the end of a parse.
  bool failed() const { return failed_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool at_end() const { return pos_ == size_; }

 private:
  bool require(std::size_t n) {
    if (failed_ || size_ - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }
  template <typename T>
  T take_le() {
    if (!require(sizeof(T))) return T{};
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// FNV-1a checksum used to validate checkpoint images end-to-end.
std::uint64_t fnv64(const Buffer& b);
std::uint64_t fnv64(const void* data, std::size_t n);

/// CRC-32 (IEEE 802.3 polynomial, reflected) used to frame records in
/// the durable journal: unlike FNV it detects all burst errors up to 32
/// bits, which is what torn-write and bit-rot detection on a log tail
/// needs.
std::uint32_t crc32(const void* data, std::size_t n);
std::uint32_t crc32(const Buffer& b);

}  // namespace oftt
