#include "common/hresult.h"

#include <cstdio>

namespace oftt {

std::string hresult_to_string(HRESULT hr) {
  switch (hr) {
    case S_OK: return "S_OK";
    case S_FALSE: return "S_FALSE";
    case E_FAIL: return "E_FAIL";
    case E_NOINTERFACE: return "E_NOINTERFACE";
    case E_POINTER: return "E_POINTER";
    case E_ABORT: return "E_ABORT";
    case E_NOTIMPL: return "E_NOTIMPL";
    case E_UNEXPECTED: return "E_UNEXPECTED";
    case E_INVALIDARG: return "E_INVALIDARG";
    case E_OUTOFMEMORY: return "E_OUTOFMEMORY";
    case REGDB_E_CLASSNOTREG: return "REGDB_E_CLASSNOTREG";
    case CLASS_E_NOAGGREGATION: return "CLASS_E_NOAGGREGATION";
    case RPC_E_DISCONNECTED: return "RPC_E_DISCONNECTED";
    case RPC_E_SERVERFAULT: return "RPC_E_SERVERFAULT";
    case RPC_E_CALL_REJECTED: return "RPC_E_CALL_REJECTED";
    case RPC_E_TIMEOUT: return "RPC_E_TIMEOUT";
    case CO_E_SERVER_EXEC_FAILURE: return "CO_E_SERVER_EXEC_FAILURE";
    case OFTT_E_NOT_INITIALIZED: return "OFTT_E_NOT_INITIALIZED";
    case OFTT_E_ALREADY_INITIALIZED: return "OFTT_E_ALREADY_INITIALIZED";
    case OFTT_E_NO_PEER: return "OFTT_E_NO_PEER";
    case OFTT_E_NOT_PRIMARY: return "OFTT_E_NOT_PRIMARY";
    case OFTT_E_CHECKPOINT_FAILED: return "OFTT_E_CHECKPOINT_FAILED";
    case OFTT_E_WATCHDOG_EXPIRED: return "OFTT_E_WATCHDOG_EXPIRED";
    case OFTT_E_BAD_HANDLE: return "OFTT_E_BAD_HANDLE";
    case OFTT_E_ENGINE_DOWN: return "OFTT_E_ENGINE_DOWN";
    case OFTT_E_SWITCHOVER_REFUSED: return "OFTT_E_SWITCHOVER_REFUSED";
    default: break;
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "HRESULT(0x%08X)", static_cast<unsigned>(hr));
  return buf;
}

}  // namespace oftt
