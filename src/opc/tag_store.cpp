#include "opc/tag_store.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <type_traits>

#include "common/strings.h"
#include "nt/memory.h"

namespace oftt::opc {

namespace {

[[maybe_unused]] bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2_of(int v) {
  int b = 0;
  while ((1 << b) < v) ++b;
  return b;
}

/// The on-region image of one tag (see TagStore::kSlotBytes). Written
/// through nt::Region::write so each store goes into the dirty tracker
/// as one precise slot-sized range.
struct Slot {
  std::uint8_t type = 0;
  std::uint8_t quality = 0;
  std::uint8_t pad[6] = {};
  std::uint64_t payload = 0;
  std::int64_t ts = 0;
};
static_assert(sizeof(Slot) == TagStore::kSlotBytes);
static_assert(std::is_trivially_copyable_v<Slot>);

}  // namespace

TagStore::TagStore(int shard_count) {
  assert(is_pow2(shard_count));
  shards_.resize(static_cast<std::size_t>(shard_count));
  shard_mask_ = static_cast<std::uint32_t>(shard_count - 1);
  shard_bits_ = log2_of(shard_count);
}

TagId TagStore::intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  TagId id = static_cast<TagId>(names_.size());
  ids_.emplace(std::string(name), id);
  names_.emplace_back(name);
  Shard& sh = shards_[static_cast<std::size_t>(shard_of(id))];
  std::size_t slot = slot_of(id);
  if (sh.values.size() <= slot) {
    sh.values.resize(slot + 1);
    sh.quality.resize(slot + 1, Quality::kBad);
    sh.stamps.resize(slot + 1, 0);
    sh.dirty.resize(slot + 1, 0);
  }
  return id;
}

TagId TagStore::find(std::string_view name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidTagId : it->second;
}

std::vector<std::string> TagStore::sorted_names() const {
  std::vector<std::string> out = names_;
  std::sort(out.begin(), out.end());
  return out;
}

bool TagStore::set(TagId id, const OpcValue& value, Quality quality, sim::SimTime now) {
  Shard& sh = shards_[static_cast<std::size_t>(shard_of(id))];
  std::size_t slot = slot_of(id);
  bool changed = sh.values[slot] != value || sh.quality[slot] != quality;
  sh.stamps[slot] = now;
  if (!changed) return false;
  sh.values[slot] = value;
  sh.quality[slot] = quality;
  ++sh.version;
  ++mutations_;
  if (sh.dirty[slot] == 0) {
    sh.dirty[slot] = 1;
    sh.dirty_list.push_back(id);
  }
  if (sh.region != nullptr && slot < sh.region_slots) {
    write_slot(sh, slot, value, quality, now);
  }
  return true;
}

const OpcValue& TagStore::value(TagId id) const {
  return shards_[static_cast<std::size_t>(shard_of(id))].values[slot_of(id)];
}

Quality TagStore::quality(TagId id) const {
  return shards_[static_cast<std::size_t>(shard_of(id))].quality[slot_of(id)];
}

sim::SimTime TagStore::timestamp(TagId id) const {
  return shards_[static_cast<std::size_t>(shard_of(id))].stamps[slot_of(id)];
}

std::size_t TagStore::dirty_count() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.dirty_list.size();
  return n;
}

void TagStore::bind_regions(nt::MemorySpace& memory, const std::string& prefix) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = shards_[i];
    std::size_t slots = sh.values.size();
    if (slots == 0) continue;
    nt::Region& region = memory.alloc(cat(prefix, ".", i), slots * kSlotBytes);
    // Precise per-slot dirty marks must never collapse to a full-region
    // delta: allow one range per slot.
    region.set_range_limit(slots);
    sh.region = &region;
    sh.region_slots = slots;
    // Seed the region with the current state so the first delta after
    // binding carries real bytes, and so a backup's restored image is
    // complete even for tags that never mutate again.
    for (std::size_t slot = 0; slot < slots; ++slot) {
      write_slot(sh, slot, sh.values[slot], sh.quality[slot], sh.stamps[slot]);
    }
  }
  bound_ = true;
}

void TagStore::write_slot(Shard& sh, std::size_t slot, const OpcValue& v, Quality q,
                          sim::SimTime now) {
  Slot s;
  if (v.is_bool()) {
    s.type = kSlotBool;
    s.payload = v.as_bool() ? 1 : 0;
  } else if (v.is_int()) {
    s.type = kSlotInt;
    s.payload = static_cast<std::uint64_t>(static_cast<std::int64_t>(v.as_int()));
  } else if (v.is_real()) {
    s.type = kSlotReal;
    double d = v.as_real();
    std::memcpy(&s.payload, &d, sizeof(d));
  } else if (v.is_string()) {
    s.type = kSlotString;  // not restorable; reload keeps the RAM value
  }
  s.quality = static_cast<std::uint8_t>(q);
  s.ts = now;
  sh.region->write(slot * kSlotBytes, s);
}

void TagStore::reload_from_regions() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = shards_[i];
    if (sh.region == nullptr) continue;
    std::size_t slots = std::min(sh.region_slots, sh.values.size());
    for (std::size_t slot = 0; slot < slots; ++slot) {
      Slot raw = sh.region->read<Slot>(slot * kSlotBytes);
      auto q = static_cast<Quality>(raw.quality);
      if (q != Quality::kBad && q != Quality::kUncertain && q != Quality::kGood) {
        q = Quality::kBad;
      }
      OpcValue v;
      switch (raw.type) {
        case kSlotBool: v = OpcValue::from_bool(raw.payload != 0); break;
        case kSlotInt:
          v = OpcValue::from_int(
              static_cast<std::int32_t>(static_cast<std::int64_t>(raw.payload)));
          break;
        case kSlotReal: {
          double d = 0.0;
          std::memcpy(&d, &raw.payload, sizeof(d));
          v = OpcValue::from_real(d);
          break;
        }
        case kSlotString: continue;  // RAM value is the best we have
        default: break;              // kSlotEmpty (or garbage): empty value
      }
      sh.values[slot] = std::move(v);
      sh.quality[slot] = q;
      sh.stamps[slot] = raw.ts;
    }
  }
}

SubscriptionHub::SubId SubscriptionHub::add_subscription() {
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    if (!subs_[i].live) {
      subs_[i].live = true;
      return static_cast<SubId>(i);
    }
  }
  subs_.push_back(Sub{});
  subs_.back().live = true;
  return static_cast<SubId>(subs_.size() - 1);
}

void SubscriptionHub::remove_subscription(SubId sub) {
  Sub& s = subs_[sub];
  for (const auto& [tag, _] : s.tags) {
    auto& list = subs_by_tag_[tag];
    list.erase(std::remove(list.begin(), list.end(), sub), list.end());
  }
  s.tags.clear();
  s.pending.clear();
  s.live = false;
}

void SubscriptionHub::subscribe(SubId sub, TagId tag) {
  Sub& s = subs_[sub];
  auto [it, fresh] = s.tags.try_emplace(tag, false);
  if (!fresh) return;
  if (subs_by_tag_.size() <= tag) subs_by_tag_.resize(tag + 1);
  subs_by_tag_[tag].push_back(sub);
  it->second = true;
  s.pending.push_back(tag);
}

void SubscriptionHub::unsubscribe(SubId sub, TagId tag) {
  Sub& s = subs_[sub];
  if (s.tags.erase(tag) == 0) return;
  auto& list = subs_by_tag_[tag];
  list.erase(std::remove(list.begin(), list.end(), sub), list.end());
}

void SubscriptionHub::mark_all_pending(SubId sub) {
  Sub& s = subs_[sub];
  for (auto& [tag, pending] : s.tags) {
    if (!pending) {
      pending = true;
      s.pending.push_back(tag);
    }
  }
}

void SubscriptionHub::invalidate_all() {
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    if (subs_[i].live) mark_all_pending(static_cast<SubId>(i));
  }
}

void SubscriptionHub::pump(sim::SimTime now) {
  if (now == last_pump_) return;
  last_pump_ = now;
  store_->drain_dirty([this](TagId tag) {
    if (tag >= subs_by_tag_.size()) return;
    for (SubId sub : subs_by_tag_[tag]) {
      Sub& s = subs_[sub];
      auto it = s.tags.find(tag);
      if (it == s.tags.end() || it->second) continue;
      it->second = true;
      s.pending.push_back(tag);
      ++routed_;
    }
  });
}

void SubscriptionHub::take_pending(SubId sub, std::vector<TagId>& out) {
  Sub& s = subs_[sub];
  out.clear();
  out.swap(s.pending);
  std::sort(out.begin(), out.end());
  for (TagId tag : out) {
    auto it = s.tags.find(tag);
    if (it != s.tags.end()) it->second = false;
  }
}

}  // namespace oftt::opc
