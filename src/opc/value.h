// OpcValue: the VARIANT analogue carried by OPC items, plus quality and
// timestamp (the OPC DA triple).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "sim/time.h"

namespace oftt::opc {

enum class Quality : std::uint8_t { kBad = 0, kUncertain = 1, kGood = 3 };

const char* quality_name(Quality q);

class OpcValue {
 public:
  OpcValue() = default;
  static OpcValue from_bool(bool v) { return OpcValue(Storage(v)); }
  static OpcValue from_int(std::int32_t v) { return OpcValue(Storage(v)); }
  static OpcValue from_real(double v) { return OpcValue(Storage(v)); }
  static OpcValue from_string(std::string v) { return OpcValue(Storage(std::move(v))); }

  bool empty() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int32_t>(v_); }
  bool is_real() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  bool as_bool(bool fallback = false) const;
  std::int32_t as_int(std::int32_t fallback = 0) const;
  /// Numeric coercion: bool/int/real all convert.
  double as_real(double fallback = 0.0) const;
  std::string as_string() const;

  bool operator==(const OpcValue&) const = default;

  void marshal(BinaryWriter& w) const;
  static OpcValue unmarshal(BinaryReader& r);

  std::string to_string() const;

 private:
  using Storage = std::variant<std::monostate, bool, std::int32_t, double, std::string>;
  explicit OpcValue(Storage v) : v_(std::move(v)) {}
  Storage v_;
};

/// One item's state as shipped in reads and OnDataChange updates.
struct ItemState {
  std::string item_id;
  OpcValue value;
  Quality quality = Quality::kBad;
  sim::SimTime timestamp = 0;

  bool operator==(const ItemState&) const = default;

  void marshal(BinaryWriter& w) const;
  static ItemState unmarshal(BinaryReader& r);
};

void marshal_item_states(BinaryWriter& w, const std::vector<ItemState>& items);
std::vector<ItemState> unmarshal_item_states(BinaryReader& r);

}  // namespace oftt::opc
