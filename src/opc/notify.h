// The coalesced OPC notification plane.
//
// The seed's subscription path shipped one ORPC OnDataChange call per
// (group, tick), each carrying string-keyed ItemStates — per-group
// datagrams with tag names repeated on every update. At 10⁴ clients
// that is the dominant traffic. This plane replaces it for subscribed
// data flow:
//
//  - a compact frame encoding: TagId + value + quality + timestamp per
//    item. Strings cross the wire exactly once, at AddItems /
//    EnableBatchedNotify time.
//  - coalescing: every group batch destined for the same client node in
//    the same sim tick rides ONE transport frame (scheduled flush at
//    t+0), on the kClassNotify traffic class of a reliable
//    transport::Endpoint — checkpoint-adjacent bulk traffic with its
//    own byte meter.
//  - fail-closed decode: count guards sized against the remaining
//    bytes, quality whitelist, strict end-of-frame — garbage or
//    truncation yields `false`, never a partial batch (same contract as
//    the SWIM wire frames).
//
// One NotifyPlane attaches per process (server side enqueues, client
// side registers per-subscription sinks); both halves share the single
// "opc.notify" port binding. Overload is surfaced, not absorbed: when
// the endpoint rejects a frame the batch is dropped, counted, and a
// kOpcBatchDrop event is published — subscribers re-learn state from
// the next change (OPC semantics: the current value is what matters).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "obs/metrics.h"
#include "opc/tag_store.h"
#include "opc/value.h"
#include "sim/process.h"
#include "transport/session.h"

namespace oftt::opc {

/// First payload byte of a coalesced notification frame. Chosen outside
/// every MsgKind / MqPacket / transport discriminator range.
inline constexpr std::uint8_t kNotifyFrame = 0x9E;
inline constexpr std::uint8_t kNotifyVersion = 1;

struct NotifyItem {
  TagId tag = 0;
  Quality quality = Quality::kBad;
  OpcValue value;
  sim::SimTime timestamp = 0;

  bool operator==(const NotifyItem&) const = default;
};

/// One group's batch within a frame, addressed by the subscription id
/// the client allocated at EnableBatchedNotify time.
struct SubBatch {
  std::uint32_t sub_id = 0;
  std::vector<NotifyItem> items;

  bool operator==(const SubBatch&) const = default;
};

Buffer encode_notify_frame(const std::vector<SubBatch>& batches);
/// Fail-closed: returns false (and leaves *out empty) on any malformed,
/// truncated or trailing-garbage input.
bool decode_notify_frame(const Buffer& payload, std::vector<SubBatch>* out);

class NotifyPlane {
 public:
  using SinkFn = std::function<void(const SubBatch&)>;

  explicit NotifyPlane(sim::Process& process,
                       transport::SessionConfig config = default_config());
  /// Per-process singleton (first call constructs with defaults; tests
  /// that need a custom SessionConfig construct the attachment first).
  static NotifyPlane& of(sim::Process& process);

  static transport::SessionConfig default_config();

  /// Client side: allocate a subscription id unique within this plane.
  std::uint32_t allocate_sub_id() { return next_sub_id_++; }
  void register_sink(std::uint32_t sub_id, SinkFn fn) { sinks_[sub_id] = std::move(fn); }
  void unregister_sink(std::uint32_t sub_id) { sinks_.erase(sub_id); }

  /// Server side: queue a batch for `client_node`; all batches enqueued
  /// in the same tick leave as one frame on the next scheduled turn.
  void enqueue(int client_node, std::uint32_t sub_id, std::vector<NotifyItem> items);

  transport::Endpoint& endpoint() { return *ep_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t frames_rejected() const { return frames_rejected_; }
  std::uint64_t batches_dropped() const { return batches_dropped_; }
  std::uint64_t notifications_sent() const { return notifications_sent_; }
  std::uint64_t notifications_received() const { return notifications_received_; }

 private:
  void flush(int client_node);
  void on_frame(int src_node, const Buffer& payload);
  obs::Gauge& pending_gauge(int client_node);

  sim::Process* process_;
  std::unique_ptr<transport::Endpoint> ep_;
  std::map<int, std::vector<SubBatch>> pending_;
  std::set<int> flush_scheduled_;
  std::map<std::uint32_t, SinkFn> sinks_;
  std::map<int, obs::Gauge> pending_gauges_;
  std::uint32_t next_sub_id_ = 1;
  sim::SimTime started_at_ = 0;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
  std::uint64_t frames_rejected_ = 0;
  std::uint64_t batches_dropped_ = 0;
  std::uint64_t notifications_sent_ = 0;
  std::uint64_t notifications_received_ = 0;

  obs::Counter ctr_notifications_;
  obs::Counter ctr_bytes_;
  obs::Counter ctr_frames_;
  obs::Counter ctr_drops_;
  obs::Gauge rate_notifications_;
  obs::Gauge rate_bytes_;
  obs::Histogram hist_latency_;
};

}  // namespace oftt::opc
