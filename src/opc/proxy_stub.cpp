// Hand-written proxy/stub pairs for the OPC interfaces — the simulated
// equivalent of the MIDL-generated proxy/stub DLLs whose "generation and
// installation ... increase extra development and configuration
// management effort" (paper §3.3). Every marshalable interface needs
// exactly this kind of translation unit.
#include "com/object.h"
#include "common/logging.h"
#include "dcom/marshal.h"
#include "dcom/registry.h"
#include "opc/interfaces.h"

namespace oftt::opc {
namespace {

using com::ComPtr;
using com::IUnknown;
using dcom::ObjectRef;
using dcom::OrpcClient;
using dcom::OrpcServer;
using dcom::StubDispatch;

// ---------------------------------------------------------------------
// IOPCServer
// ---------------------------------------------------------------------

class OpcServerProxy final : public com::Object<OpcServerProxy, IOPCServer>,
                             public dcom::ProxyBase {
 public:
  OpcServerProxy(OrpcClient& client, ObjectRef ref) : ProxyBase(client, std::move(ref)) {}

  void GetStatus(StatusHandler done) override {
    invoke(methods::kGetStatus, {}, [done](HRESULT hr, BinaryReader& r) {
      ServerStatus s;
      if (SUCCEEDED(hr)) {
        s = ServerStatus::unmarshal(r);
        if (r.failed()) hr = E_UNEXPECTED;
      }
      if (done) done(hr, s);
    });
  }

  void AddGroup(const std::string& name, sim::SimTime update_rate, GroupHandler done) override {
    BinaryWriter w;
    w.str(name);
    w.i64(update_rate);
    OrpcClient* cl = &client();
    invoke(methods::kAddGroup, std::move(w).take(), [cl, done](HRESULT hr, BinaryReader& r) {
      ComPtr<IOPCGroup> group;
      if (SUCCEEDED(hr)) {
        group = dcom::unmarshal_interface<IOPCGroup>(*cl, r);
        if (!group) hr = E_UNEXPECTED;
      }
      if (done) done(hr, std::move(group));
    });
  }

  void RemoveGroup(const std::string& name, AckHandler done) override {
    BinaryWriter w;
    w.str(name);
    invoke(methods::kRemoveGroup, std::move(w).take(),
           [done](HRESULT hr, BinaryReader&) {
             if (done) done(hr);
           });
  }
};

StubDispatch make_opc_server_stub(ComPtr<IUnknown> obj, OrpcServer& server) {
  ComPtr<IOPCServer> target = obj.as<IOPCServer>();
  OrpcServer* srv = &server;
  return [target, srv](std::uint16_t method, BinaryReader& args,
                       BinaryWriter& result) -> HRESULT {
    if (!target) return E_NOINTERFACE;
    HRESULT out = E_UNEXPECTED;
    switch (method) {
      case methods::kGetStatus:
        target->GetStatus([&](HRESULT hr, const ServerStatus& s) {
          out = hr;
          if (SUCCEEDED(hr)) s.marshal(result);
        });
        return out;
      case methods::kAddGroup: {
        std::string name = args.str();
        sim::SimTime rate = args.i64();
        if (args.failed()) return E_INVALIDARG;
        target->AddGroup(name, rate, [&](HRESULT hr, ComPtr<IOPCGroup> group) {
          out = hr;
          if (SUCCEEDED(hr)) dcom::marshal_interface(*srv, result, group);
        });
        return out;
      }
      case methods::kRemoveGroup: {
        std::string name = args.str();
        if (args.failed()) return E_INVALIDARG;
        target->RemoveGroup(name, [&](HRESULT hr) { out = hr; });
        return out;
      }
      default: return E_NOTIMPL;
    }
  };
}

// ---------------------------------------------------------------------
// IOPCGroup
// ---------------------------------------------------------------------

void marshal_string_list(BinaryWriter& w, const std::vector<std::string>& ids) {
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const auto& s : ids) w.str(s);
}

std::vector<std::string> unmarshal_string_list(BinaryReader& r) {
  std::uint32_t n = r.u32();
  std::vector<std::string> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) out.push_back(r.str());
  return out;
}

void marshal_u32_list(BinaryWriter& w, const std::vector<std::uint32_t>& vals) {
  w.u32(static_cast<std::uint32_t>(vals.size()));
  for (std::uint32_t v : vals) w.u32(v);
}

std::vector<std::uint32_t> unmarshal_u32_list(BinaryReader& r) {
  std::uint32_t n = r.u32();
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) out.push_back(r.u32());
  return out;
}

void marshal_hresults(BinaryWriter& w, const std::vector<HRESULT>& hrs) {
  w.u32(static_cast<std::uint32_t>(hrs.size()));
  for (HRESULT hr : hrs) w.i32(hr);
}

std::vector<HRESULT> unmarshal_hresults(BinaryReader& r) {
  std::uint32_t n = r.u32();
  std::vector<HRESULT> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) out.push_back(r.i32());
  return out;
}

class OpcGroupProxy final : public com::Object<OpcGroupProxy, IOPCGroup>,
                            public dcom::ProxyBase {
 public:
  OpcGroupProxy(OrpcClient& client, ObjectRef ref) : ProxyBase(client, std::move(ref)) {}

  void AddItems(const std::vector<std::string>& item_ids, ResultsHandler done) override {
    BinaryWriter w;
    marshal_string_list(w, item_ids);
    invoke(methods::kAddItems, std::move(w).take(), results_handler(std::move(done)));
  }

  void SetDeadband(double percent, AckHandler done) override {
    BinaryWriter w;
    w.f64(percent);
    invoke(methods::kSetDeadband, std::move(w).take(), ack_handler(std::move(done)));
  }

  void RemoveItems(const std::vector<std::string>& item_ids, AckHandler done) override {
    BinaryWriter w;
    marshal_string_list(w, item_ids);
    invoke(methods::kRemoveItems, std::move(w).take(), ack_handler(std::move(done)));
  }

  void SyncRead(const std::vector<std::string>& item_ids, ReadHandler done) override {
    BinaryWriter w;
    marshal_string_list(w, item_ids);
    invoke(methods::kSyncRead, std::move(w).take(), [done](HRESULT hr, BinaryReader& r) {
      std::vector<ItemState> items;
      if (SUCCEEDED(hr)) {
        items = unmarshal_item_states(r);
        if (r.failed()) hr = E_UNEXPECTED;
      }
      if (done) done(hr, items);
    });
  }

  void AsyncRead(std::uint32_t transaction, AckHandler done) override {
    BinaryWriter w;
    w.u32(transaction);
    invoke(methods::kAsyncRead, std::move(w).take(), ack_handler(std::move(done)));
  }

  void Write(const std::vector<std::pair<std::string, OpcValue>>& values,
             ResultsHandler done) override {
    BinaryWriter w;
    w.u32(static_cast<std::uint32_t>(values.size()));
    for (const auto& [tag, value] : values) {
      w.str(tag);
      value.marshal(w);
    }
    invoke(methods::kWrite, std::move(w).take(), results_handler(std::move(done)));
  }

  void SetCallback(ComPtr<IOPCDataCallback> callback, AckHandler done) override {
    BinaryWriter w;
    // The callback lives in *this* (client) process: export it here so
    // the server can call back.
    dcom::marshal_interface(OrpcServer::of(client().process()), w, callback);
    invoke(methods::kSetCallback, std::move(w).take(), ack_handler(std::move(done)));
  }

  void SetActive(bool active, AckHandler done) override {
    BinaryWriter w;
    w.boolean(active);
    invoke(methods::kSetActive, std::move(w).take(), ack_handler(std::move(done)));
  }

  void EnableBatchedNotify(const std::vector<std::string>& item_ids, int sink_node,
                           std::uint32_t sub_id, ItemIdsHandler done) override {
    BinaryWriter w;
    marshal_string_list(w, item_ids);
    w.i32(sink_node);
    w.u32(sub_id);
    invoke(methods::kEnableBatchedNotify, std::move(w).take(),
           [done](HRESULT hr, BinaryReader& r) {
             std::vector<std::uint32_t> tags;
             if (SUCCEEDED(hr)) {
               tags = unmarshal_u32_list(r);
               if (r.failed()) hr = E_UNEXPECTED;
             }
             if (done) done(hr, tags);
           });
  }

 private:
  static OrpcClient::ResultHandler ack_handler(AckHandler done) {
    return [done = std::move(done)](HRESULT hr, BinaryReader&) {
      if (done) done(hr);
    };
  }
  static OrpcClient::ResultHandler results_handler(ResultsHandler done) {
    return [done = std::move(done)](HRESULT hr, BinaryReader& r) {
      std::vector<HRESULT> results;
      if (SUCCEEDED(hr)) {
        results = unmarshal_hresults(r);
        if (r.failed()) hr = E_UNEXPECTED;
      }
      if (done) done(hr, results);
    };
  }
};

StubDispatch make_opc_group_stub(ComPtr<IUnknown> obj, OrpcServer& server) {
  ComPtr<IOPCGroup> target = obj.as<IOPCGroup>();
  OrpcServer* srv = &server;
  return [target, srv](std::uint16_t method, BinaryReader& args,
                       BinaryWriter& result) -> HRESULT {
    if (!target) return E_NOINTERFACE;
    HRESULT out = E_UNEXPECTED;
    switch (method) {
      case methods::kAddItems: {
        auto ids = unmarshal_string_list(args);
        if (args.failed()) return E_INVALIDARG;
        target->AddItems(ids, [&](HRESULT hr, const std::vector<HRESULT>& hrs) {
          out = hr;
          if (SUCCEEDED(hr)) marshal_hresults(result, hrs);
        });
        return out;
      }
      case methods::kSetDeadband: {
        double percent = args.f64();
        if (args.failed()) return E_INVALIDARG;
        target->SetDeadband(percent, [&](HRESULT hr) { out = hr; });
        return out;
      }
      case methods::kRemoveItems: {
        auto ids = unmarshal_string_list(args);
        if (args.failed()) return E_INVALIDARG;
        target->RemoveItems(ids, [&](HRESULT hr) { out = hr; });
        return out;
      }
      case methods::kSyncRead: {
        auto ids = unmarshal_string_list(args);
        if (args.failed()) return E_INVALIDARG;
        target->SyncRead(ids, [&](HRESULT hr, const std::vector<ItemState>& items) {
          out = hr;
          if (SUCCEEDED(hr)) marshal_item_states(result, items);
        });
        return out;
      }
      case methods::kAsyncRead: {
        std::uint32_t transaction = args.u32();
        if (args.failed()) return E_INVALIDARG;
        target->AsyncRead(transaction, [&](HRESULT hr) { out = hr; });
        return out;
      }
      case methods::kWrite: {
        std::uint32_t n = args.u32();
        std::vector<std::pair<std::string, OpcValue>> values;
        values.reserve(n);
        for (std::uint32_t i = 0; i < n && !args.failed(); ++i) {
          std::string tag = args.str();
          values.emplace_back(std::move(tag), OpcValue::unmarshal(args));
        }
        if (args.failed()) return E_INVALIDARG;
        target->Write(values, [&](HRESULT hr, const std::vector<HRESULT>& hrs) {
          out = hr;
          if (SUCCEEDED(hr)) marshal_hresults(result, hrs);
        });
        return out;
      }
      case methods::kSetCallback: {
        auto callback =
            dcom::unmarshal_interface<IOPCDataCallback>(OrpcClient::of(srv->process()), args);
        if (args.failed()) return E_INVALIDARG;
        target->SetCallback(std::move(callback), [&](HRESULT hr) { out = hr; });
        return out;
      }
      case methods::kSetActive: {
        bool active = args.boolean();
        if (args.failed()) return E_INVALIDARG;
        target->SetActive(active, [&](HRESULT hr) { out = hr; });
        return out;
      }
      case methods::kEnableBatchedNotify: {
        auto ids = unmarshal_string_list(args);
        int sink_node = args.i32();
        std::uint32_t sub_id = args.u32();
        if (args.failed()) return E_INVALIDARG;
        target->EnableBatchedNotify(
            ids, sink_node, sub_id, [&](HRESULT hr, const std::vector<std::uint32_t>& tags) {
              out = hr;
              if (SUCCEEDED(hr)) marshal_u32_list(result, tags);
            });
        return out;
      }
      default: return E_NOTIMPL;
    }
  };
}

// ---------------------------------------------------------------------
// IOPCDataCallback (one-way methods)
// ---------------------------------------------------------------------

class OpcCallbackProxy final : public com::Object<OpcCallbackProxy, IOPCDataCallback>,
                               public dcom::ProxyBase {
 public:
  OpcCallbackProxy(OrpcClient& client, ObjectRef ref) : ProxyBase(client, std::move(ref)) {}

  void OnDataChange(std::uint32_t transaction, const std::vector<ItemState>& items) override {
    BinaryWriter w;
    w.u32(transaction);
    marshal_item_states(w, items);
    invoke(methods::kOnDataChange, std::move(w).take(), nullptr);
  }

  void OnReadComplete(std::uint32_t transaction, HRESULT hr,
                      const std::vector<ItemState>& items) override {
    BinaryWriter w;
    w.u32(transaction);
    w.i32(hr);
    marshal_item_states(w, items);
    invoke(methods::kOnReadComplete, std::move(w).take(), nullptr);
  }
};

StubDispatch make_opc_callback_stub(ComPtr<IUnknown> obj, OrpcServer&) {
  ComPtr<IOPCDataCallback> target = obj.as<IOPCDataCallback>();
  return [target](std::uint16_t method, BinaryReader& args, BinaryWriter&) -> HRESULT {
    if (!target) return E_NOINTERFACE;
    switch (method) {
      case methods::kOnDataChange: {
        std::uint32_t transaction = args.u32();
        auto items = unmarshal_item_states(args);
        if (args.failed()) return E_INVALIDARG;
        target->OnDataChange(transaction, items);
        return S_OK;
      }
      case methods::kOnReadComplete: {
        std::uint32_t transaction = args.u32();
        HRESULT hr = args.i32();
        auto items = unmarshal_item_states(args);
        if (args.failed()) return E_INVALIDARG;
        target->OnReadComplete(transaction, hr, items);
        return S_OK;
      }
      default: return E_NOTIMPL;
    }
  };
}

// ---------------------------------------------------------------------
// IOPCBrowse
// ---------------------------------------------------------------------

class OpcBrowseProxy final : public com::Object<OpcBrowseProxy, IOPCBrowse>,
                             public dcom::ProxyBase {
 public:
  OpcBrowseProxy(OrpcClient& client, ObjectRef ref) : ProxyBase(client, std::move(ref)) {}

  void BrowseItemIds(const std::string& filter, BrowseHandler done) override {
    BinaryWriter w;
    w.str(filter);
    invoke(methods::kBrowseItemIds, std::move(w).take(), [done](HRESULT hr, BinaryReader& r) {
      std::vector<std::string> ids;
      if (SUCCEEDED(hr)) {
        ids = unmarshal_string_list(r);
        if (r.failed()) hr = E_UNEXPECTED;
      }
      if (done) done(hr, ids);
    });
  }
};

StubDispatch make_opc_browse_stub(ComPtr<IUnknown> obj, OrpcServer&) {
  ComPtr<IOPCBrowse> target = obj.as<IOPCBrowse>();
  return [target](std::uint16_t method, BinaryReader& args, BinaryWriter& result) -> HRESULT {
    if (!target) return E_NOINTERFACE;
    if (method != methods::kBrowseItemIds) return E_NOTIMPL;
    std::string filter = args.str();
    if (args.failed()) return E_INVALIDARG;
    HRESULT out = E_UNEXPECTED;
    target->BrowseItemIds(filter, [&](HRESULT hr, const std::vector<std::string>& ids) {
      out = hr;
      if (SUCCEEDED(hr)) marshal_string_list(result, ids);
    });
    return out;
  };
}

template <typename Proxy>
com::ComPtr<IUnknown> make_proxy(OrpcClient& client, const ObjectRef& ref) {
  auto proxy = Proxy::create(client, ref);
  return proxy.template as<IUnknown>();
}

}  // namespace

// Explicit, idempotent "proxy/stub DLL installation" — called from the
// OPC entry points (a static registrar would be dropped when nothing in
// this archive member is otherwise referenced).
void ensure_opc_proxy_stubs_registered() {
  static const bool registered = [] {
    auto& reg = dcom::InterfaceRegistry::instance();
    reg.register_interface(IOPCServer::iid(), make_opc_server_stub,
                           make_proxy<OpcServerProxy>);
    reg.register_interface(IOPCGroup::iid(), make_opc_group_stub, make_proxy<OpcGroupProxy>);
    reg.register_interface(IOPCDataCallback::iid(), make_opc_callback_stub,
                           make_proxy<OpcCallbackProxy>);
    reg.register_interface(IOPCBrowse::iid(), make_opc_browse_stub,
                           make_proxy<OpcBrowseProxy>);
    return true;
  }();
  (void)registered;
}

}  // namespace oftt::opc
