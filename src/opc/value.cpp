#include "opc/value.h"

#include "common/strings.h"

namespace oftt::opc {

const char* quality_name(Quality q) {
  switch (q) {
    case Quality::kBad: return "BAD";
    case Quality::kUncertain: return "UNCERTAIN";
    case Quality::kGood: return "GOOD";
  }
  return "?";
}

bool OpcValue::as_bool(bool fallback) const {
  if (auto* b = std::get_if<bool>(&v_)) return *b;
  if (auto* i = std::get_if<std::int32_t>(&v_)) return *i != 0;
  return fallback;
}

std::int32_t OpcValue::as_int(std::int32_t fallback) const {
  if (auto* i = std::get_if<std::int32_t>(&v_)) return *i;
  if (auto* b = std::get_if<bool>(&v_)) return *b ? 1 : 0;
  if (auto* d = std::get_if<double>(&v_)) return static_cast<std::int32_t>(*d);
  return fallback;
}

double OpcValue::as_real(double fallback) const {
  if (auto* d = std::get_if<double>(&v_)) return *d;
  if (auto* i = std::get_if<std::int32_t>(&v_)) return *i;
  if (auto* b = std::get_if<bool>(&v_)) return *b ? 1.0 : 0.0;
  return fallback;
}

std::string OpcValue::as_string() const {
  if (auto* s = std::get_if<std::string>(&v_)) return *s;
  return to_string();
}

void OpcValue::marshal(BinaryWriter& w) const {
  w.u8(static_cast<std::uint8_t>(v_.index()));
  switch (v_.index()) {
    case 0: break;
    case 1: w.boolean(std::get<bool>(v_)); break;
    case 2: w.i32(std::get<std::int32_t>(v_)); break;
    case 3: w.f64(std::get<double>(v_)); break;
    case 4: w.str(std::get<std::string>(v_)); break;
  }
}

OpcValue OpcValue::unmarshal(BinaryReader& r) {
  switch (r.u8()) {
    case 1: return from_bool(r.boolean());
    case 2: return from_int(r.i32());
    case 3: return from_real(r.f64());
    case 4: return from_string(r.str());
    default: return OpcValue();
  }
}

std::string OpcValue::to_string() const {
  switch (v_.index()) {
    case 1: return std::get<bool>(v_) ? "true" : "false";
    case 2: return cat(std::get<std::int32_t>(v_));
    case 3: return cat(std::get<double>(v_));
    case 4: return std::get<std::string>(v_);
    default: return "(empty)";
  }
}

void ItemState::marshal(BinaryWriter& w) const {
  w.str(item_id);
  value.marshal(w);
  w.u8(static_cast<std::uint8_t>(quality));
  w.i64(timestamp);
}

ItemState ItemState::unmarshal(BinaryReader& r) {
  ItemState s;
  s.item_id = r.str();
  s.value = OpcValue::unmarshal(r);
  s.quality = static_cast<Quality>(r.u8());
  s.timestamp = r.i64();
  return s;
}

void marshal_item_states(BinaryWriter& w, const std::vector<ItemState>& items) {
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const auto& i : items) i.marshal(w);
}

std::vector<ItemState> unmarshal_item_states(BinaryReader& r) {
  std::uint32_t n = r.u32();
  std::vector<ItemState> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n && !r.failed(); ++i) out.push_back(ItemState::unmarshal(r));
  return out;
}

}  // namespace oftt::opc
