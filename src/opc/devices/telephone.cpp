#include "opc/devices/telephone.h"

#include "common/strings.h"
#include "sim/simulation.h"

namespace oftt::opc {

TelephoneSystem::TelephoneSystem(Config config)
    : Device("TelephoneSystem"),
      config_(config),
      line_busy_(static_cast<std::size_t>(config.lines), false) {}

void TelephoneSystem::start(sim::Strand& strand, sim::Rng rng) {
  Device::start(strand, rng);
  strand_ = &strand;
  rng_ = rng;
  publish_state();
  for (int c = 0; c < config_.callers; ++c) schedule_caller(c);
}

void TelephoneSystem::schedule_caller(int caller) {
  auto think = static_cast<sim::SimTime>(rng_.exponential(config_.mean_think_s) * 1e9);
  strand_->schedule_after(think, [this, caller] { attempt_call(caller); });
}

void TelephoneSystem::attempt_call(int caller) {
  int free_line = -1;
  for (int l = 0; l < config_.lines; ++l) {
    if (!line_busy_[static_cast<std::size_t>(l)]) {
      free_line = l;
      break;
    }
  }
  if (free_line < 0) {
    ++blocked_calls_;
    emit(CallEvent::Kind::kBlocked, caller, -1);
    publish_state();
    schedule_caller(caller);  // try again after another think time
    return;
  }
  line_busy_[static_cast<std::size_t>(free_line)] = true;
  ++busy_;
  ++total_calls_;
  emit(CallEvent::Kind::kStart, caller, free_line);
  publish_state();
  auto hold = static_cast<sim::SimTime>(rng_.exponential(config_.mean_hold_s) * 1e9);
  strand_->schedule_after(hold, [this, caller, free_line] { end_call(caller, free_line); });
}

void TelephoneSystem::end_call(int caller, int line) {
  line_busy_[static_cast<std::size_t>(line)] = false;
  --busy_;
  emit(CallEvent::Kind::kEnd, caller, line);
  publish_state();
  schedule_caller(caller);
}

void TelephoneSystem::publish_state() {
  sim::SimTime now = strand_ ? strand_->process().sim().now() : 0;
  set_point("Tel.BusyLines", OpcValue::from_int(busy_), now);
  set_point("Tel.TotalCalls", OpcValue::from_int(static_cast<std::int32_t>(total_calls_)), now);
  set_point("Tel.BlockedCalls", OpcValue::from_int(static_cast<std::int32_t>(blocked_calls_)),
            now);
  for (int l = 0; l < config_.lines; ++l) {
    set_point(cat("Tel.Line", l + 1, ".Busy"),
              OpcValue::from_bool(line_busy_[static_cast<std::size_t>(l)]), now);
  }
}

void TelephoneSystem::emit(CallEvent::Kind kind, int caller, int line) {
  if (!listener_) return;
  CallEvent e;
  e.kind = kind;
  e.caller = caller;
  e.line = line;
  e.at = strand_ ? strand_->process().sim().now() : 0;
  listener_(e);
}

}  // namespace oftt::opc
