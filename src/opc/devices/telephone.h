// The paper's §4 demonstration workload: "a simulated small office
// telephone system that consists of 5 telephone lines and 10 callers".
//
// Callers alternate think time (exponential) and call attempts; a call
// occupies a free line for an exponential holding time, or is blocked
// when all lines are busy (Erlang-B behaviour). The simulator is both
// an opc::Device (tags readable by an OPC server) and an event source
// (per-call records for the Calling History generator / Message
// Diverter path).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "opc/device.h"

namespace oftt::opc {

struct CallEvent {
  enum class Kind : std::uint8_t { kStart = 1, kEnd = 2, kBlocked = 3 };
  Kind kind = Kind::kStart;
  int caller = 0;
  int line = -1;  // -1 for blocked calls
  sim::SimTime at = 0;

  void marshal(BinaryWriter& w) const {
    w.u8(static_cast<std::uint8_t>(kind));
    w.i32(caller);
    w.i32(line);
    w.i64(at);
  }
  static CallEvent unmarshal(BinaryReader& r) {
    CallEvent e;
    e.kind = static_cast<Kind>(r.u8());
    e.caller = r.i32();
    e.line = r.i32();
    e.at = r.i64();
    return e;
  }
};

struct TelephoneConfig {
  int lines = 5;
  int callers = 10;
  double mean_think_s = 20.0;  // idle time between a caller's calls
  double mean_hold_s = 8.0;    // call duration
};

class TelephoneSystem final : public Device {
 public:
  using Config = TelephoneConfig;

  explicit TelephoneSystem(Config config = Config());

  void start(sim::Strand& strand, sim::Rng rng) override;

  /// Observe every call start/end/block (the external event feed).
  void set_event_listener(std::function<void(const CallEvent&)> listener) {
    listener_ = std::move(listener);
  }

  int busy_lines() const { return busy_; }
  std::uint64_t total_calls() const { return total_calls_; }
  std::uint64_t blocked_calls() const { return blocked_calls_; }

 private:
  void schedule_caller(int caller);
  void attempt_call(int caller);
  void end_call(int caller, int line);
  void publish_state();
  void emit(CallEvent::Kind kind, int caller, int line);

  Config config_;
  sim::Strand* strand_ = nullptr;
  sim::Rng rng_{0};
  std::vector<bool> line_busy_;
  int busy_ = 0;
  std::uint64_t total_calls_ = 0;
  std::uint64_t blocked_calls_ = 0;
  std::function<void(const CallEvent&)> listener_;
};

}  // namespace oftt::opc
