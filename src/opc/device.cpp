#include "opc/device.h"

#include <cmath>

#include "common/logging.h"
#include "obs/event_bus.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::opc {

ItemState Device::read(const std::string& tag, sim::SimTime now) const {
  TagId id = store_.find(tag);
  if (id == kInvalidTagId) {
    return ItemState{tag, OpcValue(), Quality::kBad, now};
  }
  return read_id(id, now);
}

ItemState Device::read_id(TagId id, sim::SimTime now) const {
  (void)now;
  ItemState s;
  s.item_id = store_.name(id);
  s.value = store_.value(id);
  s.quality = faulted_ ? Quality::kBad : store_.quality(id);
  s.timestamp = store_.timestamp(id);
  return s;
}

HRESULT Device::write(const std::string& tag, const OpcValue& value, sim::SimTime now) {
  if (faulted_) return E_FAIL;
  TagId id = store_.find(tag);
  if (id == kInvalidTagId) return E_INVALIDARG;
  store_.set(id, value, Quality::kGood, now);
  return S_OK;
}

void Device::set_faulted(bool faulted) {
  if (faulted_ == faulted) return;
  faulted_ = faulted;
  // Quality flipped for every point without a store mutation: force a
  // re-announce so subscribers see the BAD storm (or the recovery).
  hub_.invalidate_all();
  if (host_strand_ != nullptr) {
    auto& sim = host_strand_->process().sim();
    obs::Event e;
    e.kind = obs::EventKind::kOpcDeviceFault;
    e.node = host_strand_->process().node().id();
    e.component = name_;
    e.detail = faulted ? "device faulted" : "device restored";
    e.a = faulted ? 1 : 0;
    sim.telemetry().bus().publish(e);
  }
}

void Device::set_point(const std::string& tag, OpcValue value, sim::SimTime now,
                       Quality quality) {
  store_.set(store_.intern(tag), value, quality, now);
}

OpcValue SineSignal::sample(double t, sim::Rng& rng) {
  double v = offset_ + amplitude_ * std::sin(2.0 * 3.14159265358979 * t / period_s_);
  if (noise_ > 0.0) v += (rng.next_double() - 0.5) * 2.0 * noise_;
  return OpcValue::from_real(v);
}

OpcValue RandomWalkSignal::sample(double, sim::Rng& rng) {
  value_ += (rng.next_double() - 0.5) * 2.0 * step_;
  if (value_ < min_) value_ = min_;
  if (value_ > max_) value_ = max_;
  return OpcValue::from_real(value_);
}

OpcValue SquareSignal::sample(double t, sim::Rng&) {
  return OpcValue::from_bool(std::fmod(t, period_s_) < period_s_ / 2.0);
}

OpcValue CounterSignal::sample(double, sim::Rng&) { return OpcValue::from_int(count_++); }

void PlcDevice::add_input(const std::string& tag, std::unique_ptr<SignalModel> model) {
  Input& in = inputs_[tag];
  in.model = std::move(model);
  set_point(tag, OpcValue(), 0, Quality::kUncertain);  // no scan yet
  in.id = store().find(tag);
}

void PlcDevice::add_output(const std::string& tag, OpcValue initial) {
  outputs_.push_back(tag);
  set_point(tag, std::move(initial), 0);
}

void PlcDevice::start(sim::Strand& strand, sim::Rng rng) {
  Device::start(strand, rng);
  strand_ = &strand;
  rng_ = rng;
  scan_timer_ = std::make_unique<sim::PeriodicTimer>(strand);
  scan_timer_->start(scan_period_, [this] { scan(); });
}

void PlcDevice::scan() {
  if (faulted() || strand_ == nullptr) return;
  sim::SimTime now = strand_->process().sim().now();
  double t = sim::to_seconds(now);
  for (auto& [tag, in] : inputs_) {
    set_point_id(in.id, in.model->sample(t, rng_), now);
  }
  ++scans_;
}

HRESULT PlcDevice::write(const std::string& tag, const OpcValue& value, sim::SimTime now) {
  // Only declared outputs are writable on a PLC.
  for (const auto& out : outputs_) {
    if (out == tag) return Device::write(tag, value, now);
  }
  return has_tag(tag) ? E_FAIL : E_INVALIDARG;
}

}  // namespace oftt::opc
