#include "opc/device.h"

#include <cmath>

#include "common/logging.h"
#include "sim/simulation.h"

namespace oftt::opc {

std::vector<std::string> Device::tags() const {
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [tag, _] : points_) out.push_back(tag);
  return out;
}

ItemState Device::read(const std::string& tag, sim::SimTime now) const {
  auto it = points_.find(tag);
  if (it == points_.end()) {
    return ItemState{tag, OpcValue(), Quality::kBad, now};
  }
  ItemState s = it->second;
  if (faulted_) s.quality = Quality::kBad;
  return s;
}

HRESULT Device::write(const std::string& tag, const OpcValue& value, sim::SimTime now) {
  if (faulted_) return E_FAIL;
  auto it = points_.find(tag);
  if (it == points_.end()) return E_INVALIDARG;
  it->second.value = value;
  it->second.timestamp = now;
  it->second.quality = Quality::kGood;
  return S_OK;
}

void Device::set_point(const std::string& tag, OpcValue value, sim::SimTime now,
                       Quality quality) {
  ItemState& s = points_[tag];
  s.item_id = tag;
  s.value = std::move(value);
  s.quality = quality;
  s.timestamp = now;
}

OpcValue SineSignal::sample(double t, sim::Rng& rng) {
  double v = offset_ + amplitude_ * std::sin(2.0 * 3.14159265358979 * t / period_s_);
  if (noise_ > 0.0) v += (rng.next_double() - 0.5) * 2.0 * noise_;
  return OpcValue::from_real(v);
}

OpcValue RandomWalkSignal::sample(double, sim::Rng& rng) {
  value_ += (rng.next_double() - 0.5) * 2.0 * step_;
  if (value_ < min_) value_ = min_;
  if (value_ > max_) value_ = max_;
  return OpcValue::from_real(value_);
}

OpcValue SquareSignal::sample(double t, sim::Rng&) {
  return OpcValue::from_bool(std::fmod(t, period_s_) < period_s_ / 2.0);
}

OpcValue CounterSignal::sample(double, sim::Rng&) { return OpcValue::from_int(count_++); }

void PlcDevice::add_input(const std::string& tag, std::unique_ptr<SignalModel> model) {
  inputs_[tag] = std::move(model);
  set_point(tag, OpcValue(), 0, Quality::kUncertain);  // no scan yet
}

void PlcDevice::add_output(const std::string& tag, OpcValue initial) {
  outputs_.push_back(tag);
  set_point(tag, std::move(initial), 0);
}

void PlcDevice::start(sim::Strand& strand, sim::Rng rng) {
  strand_ = &strand;
  rng_ = rng;
  scan_timer_ = std::make_unique<sim::PeriodicTimer>(strand);
  scan_timer_->start(scan_period_, [this] { scan(); });
}

void PlcDevice::scan() {
  if (faulted() || strand_ == nullptr) return;
  sim::SimTime now = strand_->process().sim().now();
  double t = sim::to_seconds(now);
  for (auto& [tag, model] : inputs_) {
    set_point(tag, model->sample(t, rng_), now);
  }
  ++scans_;
}

HRESULT PlcDevice::write(const std::string& tag, const OpcValue& value, sim::SimTime now) {
  // Only declared outputs are writable on a PLC.
  for (const auto& out : outputs_) {
    if (out == tag) return Device::write(tag, value, now);
  }
  return has_tag(tag) ? E_FAIL : E_INVALIDARG;
}

}  // namespace oftt::opc
