// The OPC server implementation: OpcServerObject (coclass) and its
// groups. A server wraps one Device; each connected client activates
// its own server instance (per-connection COM objects) sharing the
// device. Per the paper, OPC servers are stateless — everything here is
// reconstructible from the device, which is why the OPC-server FTIM
// takes no checkpoints.
//
// Groups are change-driven: instead of re-reading every item each tick
// and diffing (the seed's O(items) poll), a group holds a
// SubscriptionHub subscription over the device's TagStore and consumes
// only the tags that actually changed since its last tick — O(changed).
// Deadband filtering and the announce/suppress decision are evaluated
// against the group's last-notified value exactly as before, so the
// observable update stream is unchanged. Delivery is either the classic
// per-group ORPC OnDataChange (SetCallback) or the coalesced
// notification plane (EnableBatchedNotify).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "com/object.h"
#include "com/runtime.h"
#include "obs/metrics.h"
#include "opc/device.h"
#include "opc/interfaces.h"
#include "sim/timer.h"

namespace oftt::opc {

class OpcGroupObject final : public com::Object<OpcGroupObject, IOPCGroup> {
 public:
  OpcGroupObject(sim::Process& process, std::shared_ptr<Device> device, std::string name,
                 sim::SimTime update_rate);
  ~OpcGroupObject() override;

  void AddItems(const std::vector<std::string>& item_ids, ResultsHandler done) override;
  void SetDeadband(double percent, AckHandler done) override;
  void RemoveItems(const std::vector<std::string>& item_ids, AckHandler done) override;
  void SyncRead(const std::vector<std::string>& item_ids, ReadHandler done) override;
  void AsyncRead(std::uint32_t transaction, AckHandler done) override;
  void Write(const std::vector<std::pair<std::string, OpcValue>>& values,
             ResultsHandler done) override;
  void SetCallback(com::ComPtr<IOPCDataCallback> callback, AckHandler done) override;
  void SetActive(bool active, AckHandler done) override;
  void EnableBatchedNotify(const std::vector<std::string>& item_ids, int sink_node,
                           std::uint32_t sub_id, ItemIdsHandler done) override;

  const std::string& name() const { return name_; }
  std::size_t item_count() const { return items_.size(); }
  std::uint64_t notified_total() const { return notified_total_; }
  std::uint64_t suppressed_total() const { return suppressed_total_; }

 private:
  /// Per-subscribed-tag notify state: the last value/quality announced
  /// to the sink, plus the observed range for percent-deadband
  /// evaluation. `seen` false means the next change always announces
  /// (fresh subscription / re-announce after SetCallback) — the
  /// documented first-sample semantics: the first update of an item is
  /// never deadband-suppressed, and the observed range only ever widens
  /// (warms up monotonically) from the samples the group has seen.
  struct Watch {
    OpcValue value;
    Quality quality = Quality::kBad;
    bool seen = false;
    double range_min = 0.0;
    double range_max = 0.0;
    bool range_init = false;
  };

  std::vector<ItemState> read_items(const std::vector<std::string>& ids) const;
  void update_tick();
  void mark_reannounce();

  sim::Process* process_;
  std::shared_ptr<Device> device_;
  std::string name_;
  sim::SimTime update_rate_;
  bool active_ = true;
  /// Subscribed item name -> TagId (lexicographic: AsyncRead and the
  /// legacy callback batches announce in name order, as the seed did).
  std::map<std::string, TagId> items_;
  SubscriptionHub::SubId sub_;
  std::map<TagId, Watch> watch_;
  double deadband_percent_ = 0.0;
  com::ComPtr<IOPCDataCallback> callback_;
  /// Batched delivery target; batch_node_ < 0 means legacy callback.
  int batch_node_ = -1;
  std::uint32_t batch_sub_ = 0;
  std::vector<TagId> scratch_;
  sim::PeriodicTimer update_timer_;

  std::uint64_t notified_total_ = 0;
  std::uint64_t suppressed_total_ = 0;
  std::uint64_t last_batch_key_ = ~0ull;
  obs::Gauge gauge_items_;
  obs::Counter ctr_notified_;
  obs::Counter ctr_suppressed_;
};

class OpcServerObject final
    : public com::Object<OpcServerObject, IOPCServer, IOPCBrowse> {
 public:
  OpcServerObject(sim::Process& process, std::shared_ptr<Device> device, std::string vendor);

  void GetStatus(StatusHandler done) override;
  void AddGroup(const std::string& name, sim::SimTime update_rate, GroupHandler done) override;
  void RemoveGroup(const std::string& name, AckHandler done) override;
  void BrowseItemIds(const std::string& filter, BrowseHandler done) override;

 private:
  sim::Process* process_;
  std::shared_ptr<Device> device_;
  std::string vendor_;
  sim::SimTime start_time_;
  std::map<std::string, com::ComPtr<OpcGroupObject>> groups_;
};

/// Wire an OPC server application into a process: starts the device,
/// registers the coclass for (remote) activation, and exposes it via
/// the process's ORPC endpoint. Call from the process factory.
void install_opc_server(sim::Process& process, const Clsid& clsid,
                        std::shared_ptr<Device> device, const std::string& vendor);

}  // namespace oftt::opc
