// The OPC server implementation: OpcServerObject (coclass) and its
// groups. A server wraps one Device; each connected client activates
// its own server instance (per-connection COM objects) sharing the
// device. Per the paper, OPC servers are stateless — everything here is
// reconstructible from the device, which is why the OPC-server FTIM
// takes no checkpoints.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "com/object.h"
#include "com/runtime.h"
#include "opc/device.h"
#include "opc/interfaces.h"
#include "sim/timer.h"

namespace oftt::opc {

class OpcGroupObject final : public com::Object<OpcGroupObject, IOPCGroup> {
 public:
  OpcGroupObject(sim::Process& process, std::shared_ptr<Device> device, std::string name,
                 sim::SimTime update_rate);

  void AddItems(const std::vector<std::string>& item_ids, ResultsHandler done) override;
  void SetDeadband(double percent, AckHandler done) override;
  void RemoveItems(const std::vector<std::string>& item_ids, AckHandler done) override;
  void SyncRead(const std::vector<std::string>& item_ids, ReadHandler done) override;
  void AsyncRead(std::uint32_t transaction, AckHandler done) override;
  void Write(const std::vector<std::pair<std::string, OpcValue>>& values,
             ResultsHandler done) override;
  void SetCallback(com::ComPtr<IOPCDataCallback> callback, AckHandler done) override;
  void SetActive(bool active, AckHandler done) override;

  const std::string& name() const { return name_; }
  std::size_t item_count() const { return items_.size(); }

 private:
  std::vector<ItemState> read_items(const std::vector<std::string>& ids) const;
  void update_tick();

  sim::Process* process_;
  std::shared_ptr<Device> device_;
  std::string name_;
  sim::SimTime update_rate_;
  bool active_ = true;
  std::set<std::string> items_;
  std::map<std::string, ItemState> last_sent_;
  double deadband_percent_ = 0.0;
  std::map<std::string, std::pair<double, double>> observed_range_;  // min,max per item
  com::ComPtr<IOPCDataCallback> callback_;
  sim::PeriodicTimer update_timer_;
};

class OpcServerObject final
    : public com::Object<OpcServerObject, IOPCServer, IOPCBrowse> {
 public:
  OpcServerObject(sim::Process& process, std::shared_ptr<Device> device, std::string vendor);

  void GetStatus(StatusHandler done) override;
  void AddGroup(const std::string& name, sim::SimTime update_rate, GroupHandler done) override;
  void RemoveGroup(const std::string& name, AckHandler done) override;
  void BrowseItemIds(const std::string& filter, BrowseHandler done) override;

 private:
  sim::Process* process_;
  std::shared_ptr<Device> device_;
  std::string vendor_;
  sim::SimTime start_time_;
  std::map<std::string, com::ComPtr<OpcGroupObject>> groups_;
};

/// Wire an OPC server application into a process: starts the device,
/// registers the coclass for (remote) activation, and exposes it via
/// the process's ORPC endpoint. Call from the process factory.
void install_opc_server(sim::Process& process, const Clsid& clsid,
                        std::shared_ptr<Device> device, const std::string& vendor);

}  // namespace oftt::opc
