// The OPC Data Access COM interfaces (v1-era shape, async-first).
//
// Methods take completion callbacks instead of synchronous out-params:
// in-process servers complete them inline, remote proxies complete them
// when the ORPC response (or timeout) arrives. This mirrors how OPC
// clients actually consume data — IOPCAsyncIO transactions answered
// through IOPCDataCallback — while keeping one signature for local and
// remote use.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "com/unknown.h"
#include "opc/value.h"

namespace oftt::opc {

struct ServerStatus {
  sim::SimTime start_time = 0;
  sim::SimTime current_time = 0;
  std::uint32_t group_count = 0;
  std::string vendor;
  bool running = false;

  void marshal(BinaryWriter& w) const {
    w.i64(start_time);
    w.i64(current_time);
    w.u32(group_count);
    w.str(vendor);
    w.boolean(running);
  }
  static ServerStatus unmarshal(BinaryReader& r) {
    ServerStatus s;
    s.start_time = r.i64();
    s.current_time = r.i64();
    s.group_count = r.u32();
    s.vendor = r.str();
    s.running = r.boolean();
    return s;
  }
};

using AckHandler = std::function<void(HRESULT)>;
using ResultsHandler = std::function<void(HRESULT, const std::vector<HRESULT>&)>;
using ReadHandler = std::function<void(HRESULT, const std::vector<ItemState>&)>;
using StatusHandler = std::function<void(HRESULT, const ServerStatus&)>;
/// EnableBatchedNotify completion: per-item dense TagIds, aligned with
/// the request's item list (kInvalidTagId slots mark unknown items).
using ItemIdsHandler = std::function<void(HRESULT, const std::vector<std::uint32_t>&)>;

/// Client-implemented sink for subscription updates and async IO
/// completions. Both methods are one-way (no response expected).
struct IOPCDataCallback : com::IUnknown {
  OFTT_COM_INTERFACE_ID(IOPCDataCallback)
  virtual void OnDataChange(std::uint32_t transaction, const std::vector<ItemState>& items) = 0;
  virtual void OnReadComplete(std::uint32_t transaction, HRESULT hr,
                              const std::vector<ItemState>& items) = 0;
};

struct IOPCGroup : com::IUnknown {
  OFTT_COM_INTERFACE_ID(IOPCGroup)
  virtual void AddItems(const std::vector<std::string>& item_ids, ResultsHandler done) = 0;
  /// OPC DA percent deadband: numeric items are only re-announced when
  /// they move more than `percent` of their observed range since the
  /// last announcement. 0 disables (every change announced).
  virtual void SetDeadband(double percent, AckHandler done) = 0;
  virtual void RemoveItems(const std::vector<std::string>& item_ids, AckHandler done) = 0;
  virtual void SyncRead(const std::vector<std::string>& item_ids, ReadHandler done) = 0;
  /// Read all items of the group; results delivered via the registered
  /// callback's OnReadComplete with this transaction id.
  virtual void AsyncRead(std::uint32_t transaction, AckHandler done) = 0;
  virtual void Write(const std::vector<std::pair<std::string, OpcValue>>& values,
                     ResultsHandler done) = 0;
  virtual void SetCallback(com::ComPtr<IOPCDataCallback> callback, AckHandler done) = 0;
  virtual void SetActive(bool active, AckHandler done) = 0;
  /// Switch the group's data delivery from per-group ORPC OnDataChange
  /// calls to the coalesced notification plane: updates for `item_ids`
  /// are batched as (TagId, value, quality, timestamp) tuples and ride
  /// one transport frame per (client node, tick) shared with every
  /// other batched group of that client. `sub_id` is the client-side
  /// demux key (NotifyPlane::allocate_sub_id). Item names cross the
  /// wire here for the last time; `done` returns the dense TagIds the
  /// frames will carry, aligned with `item_ids`.
  virtual void EnableBatchedNotify(const std::vector<std::string>& item_ids, int sink_node,
                                   std::uint32_t sub_id, ItemIdsHandler done) = 0;
};

using GroupHandler = std::function<void(HRESULT, com::ComPtr<IOPCGroup>)>;
using BrowseHandler = std::function<void(HRESULT, const std::vector<std::string>&)>;

/// Address-space browsing (the OPC browse interface): enumerate the
/// item ids the server's device exposes, optionally filtered by
/// substring. Stateless, so any server instance answers.
struct IOPCBrowse : com::IUnknown {
  OFTT_COM_INTERFACE_ID(IOPCBrowse)
  virtual void BrowseItemIds(const std::string& filter, BrowseHandler done) = 0;
};

struct IOPCServer : com::IUnknown {
  OFTT_COM_INTERFACE_ID(IOPCServer)
  virtual void GetStatus(StatusHandler done) = 0;
  virtual void AddGroup(const std::string& name, sim::SimTime update_rate, GroupHandler done) = 0;
  virtual void RemoveGroup(const std::string& name, AckHandler done) = 0;
};

// Method ordinals for the hand-written proxy/stub pairs (proxy_stub.cpp).
namespace methods {
enum OpcServerMethod : std::uint16_t { kGetStatus = 1, kAddGroup = 2, kRemoveGroup = 3 };
enum OpcGroupMethod : std::uint16_t {
  kAddItems = 1,
  kSetDeadband = 8,
  kRemoveItems = 2,
  kSyncRead = 3,
  kAsyncRead = 4,
  kWrite = 5,
  kSetCallback = 6,
  kSetActive = 7,
  kEnableBatchedNotify = 9,
};
enum OpcCallbackMethod : std::uint16_t { kOnDataChange = 1, kOnReadComplete = 2 };
enum OpcBrowseMethod : std::uint16_t { kBrowseItemIds = 1 };
}  // namespace methods

/// Install the OPC proxy/stub pairs into the interface registry
/// (idempotent). The OPC server host and OpcConnection call this; call
/// it yourself before hand-marshaling OPC interfaces.
void ensure_opc_proxy_stubs_registered();

}  // namespace oftt::opc
