#include "opc/server.h"

#include <cmath>

#include "common/logging.h"
#include "dcom/server.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::opc {

OpcGroupObject::OpcGroupObject(sim::Process& process, std::shared_ptr<Device> device,
                               std::string name, sim::SimTime update_rate)
    : process_(&process),
      device_(std::move(device)),
      name_(std::move(name)),
      update_rate_(update_rate),
      update_timer_(process.main_strand()) {
  update_timer_.start(update_rate_, [this] { update_tick(); });
}

void OpcGroupObject::AddItems(const std::vector<std::string>& item_ids, ResultsHandler done) {
  std::vector<HRESULT> results;
  results.reserve(item_ids.size());
  for (const auto& id : item_ids) {
    if (device_->has_tag(id)) {
      items_.insert(id);
      results.push_back(S_OK);
    } else {
      results.push_back(E_INVALIDARG);
    }
  }
  if (done) done(S_OK, results);
}

void OpcGroupObject::SetDeadband(double percent, AckHandler done) {
  if (percent < 0.0 || percent > 100.0) {
    if (done) done(E_INVALIDARG);
    return;
  }
  deadband_percent_ = percent;
  if (done) done(S_OK);
}

void OpcGroupObject::RemoveItems(const std::vector<std::string>& item_ids, AckHandler done) {
  for (const auto& id : item_ids) {
    items_.erase(id);
    last_sent_.erase(id);
  }
  if (done) done(S_OK);
}

std::vector<ItemState> OpcGroupObject::read_items(const std::vector<std::string>& ids) const {
  sim::SimTime now = process_->sim().now();
  std::vector<ItemState> out;
  out.reserve(ids.size());
  for (const auto& id : ids) out.push_back(device_->read(id, now));
  return out;
}

void OpcGroupObject::SyncRead(const std::vector<std::string>& item_ids, ReadHandler done) {
  if (done) done(S_OK, read_items(item_ids));
}

void OpcGroupObject::AsyncRead(std::uint32_t transaction, AckHandler done) {
  if (!callback_) {
    if (done) done(E_FAIL);  // no callback registered (CONNECT_E_NOCONNECTION)
    return;
  }
  if (done) done(S_OK);
  std::vector<std::string> ids(items_.begin(), items_.end());
  // Complete on a later turn, as a real async transaction would.
  auto cb = callback_;
  process_->main_strand().schedule_after(sim::microseconds(50),
                                         [this, cb, transaction, ids = std::move(ids)] {
                                           cb->OnReadComplete(transaction, S_OK, read_items(ids));
                                         });
}

void OpcGroupObject::Write(const std::vector<std::pair<std::string, OpcValue>>& values,
                           ResultsHandler done) {
  sim::SimTime now = process_->sim().now();
  std::vector<HRESULT> results;
  results.reserve(values.size());
  for (const auto& [tag, value] : values) {
    results.push_back(device_->write(tag, value, now));
  }
  if (done) done(S_OK, results);
}

void OpcGroupObject::SetCallback(com::ComPtr<IOPCDataCallback> callback, AckHandler done) {
  callback_ = std::move(callback);
  last_sent_.clear();  // re-announce everything to the new sink
  if (done) done(S_OK);
}

void OpcGroupObject::SetActive(bool active, AckHandler done) {
  active_ = active;
  if (done) done(S_OK);
}

void OpcGroupObject::update_tick() {
  if (!active_ || !callback_ || items_.empty()) return;
  sim::SimTime now = process_->sim().now();
  std::vector<ItemState> changed;
  for (const auto& id : items_) {
    ItemState s = device_->read(id, now);
    // Track the observed range for percent-deadband evaluation.
    if (s.value.is_real() || s.value.is_int()) {
      double v = s.value.as_real();
      auto [it_range, fresh] = observed_range_.try_emplace(id, v, v);
      if (!fresh) {
        it_range->second.first = std::min(it_range->second.first, v);
        it_range->second.second = std::max(it_range->second.second, v);
      }
    }
    auto it = last_sent_.find(id);
    bool announce = it == last_sent_.end() || it->second.quality != s.quality;
    if (!announce && it->second.value != s.value) {
      announce = true;
      if (deadband_percent_ > 0.0 && (s.value.is_real() || s.value.is_int())) {
        auto range_it = observed_range_.find(id);
        double range = range_it == observed_range_.end()
                           ? 0.0
                           : range_it->second.second - range_it->second.first;
        double delta = std::abs(s.value.as_real() - it->second.value.as_real());
        if (range > 0.0 && delta < range * deadband_percent_ / 100.0) announce = false;
      }
    }
    if (announce) {
      last_sent_[id] = s;
      changed.push_back(std::move(s));
    }
  }
  if (!changed.empty()) callback_->OnDataChange(0, changed);
}

OpcServerObject::OpcServerObject(sim::Process& process, std::shared_ptr<Device> device,
                                 std::string vendor)
    : process_(&process),
      device_(std::move(device)),
      vendor_(std::move(vendor)),
      start_time_(process.sim().now()) {}

void OpcServerObject::GetStatus(StatusHandler done) {
  ServerStatus s;
  s.start_time = start_time_;
  s.current_time = process_->sim().now();
  s.group_count = static_cast<std::uint32_t>(groups_.size());
  s.vendor = vendor_;
  s.running = !device_->faulted();
  if (done) done(S_OK, s);
}

void OpcServerObject::AddGroup(const std::string& name, sim::SimTime update_rate,
                               GroupHandler done) {
  if (groups_.count(name) != 0) {
    if (done) done(E_INVALIDARG, {});
    return;
  }
  auto group = OpcGroupObject::create(*process_, device_, name, update_rate);
  groups_[name] = group;
  if (done) done(S_OK, com::ComPtr<IOPCGroup>(group.get()));
}

void OpcServerObject::BrowseItemIds(const std::string& filter, BrowseHandler done) {
  std::vector<std::string> out;
  for (const auto& tag : device_->tags()) {
    if (filter.empty() || tag.find(filter) != std::string::npos) out.push_back(tag);
  }
  if (done) done(S_OK, out);
}

void OpcServerObject::RemoveGroup(const std::string& name, AckHandler done) {
  if (done) done(groups_.erase(name) > 0 ? S_OK : E_INVALIDARG);
}

void install_opc_server(sim::Process& process, const Clsid& clsid,
                        std::shared_ptr<Device> device, const std::string& vendor) {
  ensure_opc_proxy_stubs_registered();
  device->start(process.main_strand(),
                process.sim().fork_rng(device->name()));
  auto& com_rt = com::ComRuntime::of(process);
  auto factory = com::LambdaClassFactory::create(
      [proc = &process, device, vendor](com::REFIID iid, void** ppv) -> HRESULT {
        auto server = OpcServerObject::create(*proc, device, vendor);
        return server->QueryInterface(iid, ppv);
      });
  com_rt.register_class(clsid, com::ComPtr<com::IClassFactory>(factory.get()), vendor);
  dcom::OrpcServer::of(process).register_server_class(clsid, vendor);
}

}  // namespace oftt::opc
