#include "opc/server.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "dcom/server.h"
#include "obs/event_bus.h"
#include "opc/notify.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::opc {

namespace {

/// Deterministic per-process group ordinal, so every group's metric
/// names stay unique even when each connection names its group "sub".
struct GroupOrdinals {
  std::uint64_t next = 0;
};

std::uint64_t log2_bucket(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<std::uint64_t>(64 - std::countl_zero(v));
}

}  // namespace

OpcGroupObject::OpcGroupObject(sim::Process& process, std::shared_ptr<Device> device,
                               std::string name, sim::SimTime update_rate)
    : process_(&process),
      device_(std::move(device)),
      name_(std::move(name)),
      update_rate_(update_rate),
      sub_(device_->hub().add_subscription()),
      update_timer_(process.main_strand()) {
  std::uint64_t ord = process.attachment<GroupOrdinals>().next++;
  auto& metrics = process.sim().telemetry().metrics();
  std::string prefix = cat("oftt.opc.group.n", process.node().id(), ".", device_->name(),
                           ".", name_, "#", ord);
  gauge_items_ = metrics.gauge(cat(prefix, ".items"));
  ctr_notified_ = metrics.counter(cat(prefix, ".notified"));
  ctr_suppressed_ = metrics.counter(cat(prefix, ".suppressed"));
  update_timer_.start(update_rate_, [this] { update_tick(); });
}

OpcGroupObject::~OpcGroupObject() { device_->hub().remove_subscription(sub_); }

void OpcGroupObject::AddItems(const std::vector<std::string>& item_ids, ResultsHandler done) {
  std::vector<HRESULT> results;
  results.reserve(item_ids.size());
  for (const auto& id : item_ids) {
    TagId tag = device_->store().find(id);
    if (tag != kInvalidTagId) {
      items_.emplace(id, tag);
      device_->hub().subscribe(sub_, tag);
      results.push_back(S_OK);
    } else {
      results.push_back(E_INVALIDARG);
    }
  }
  gauge_items_.set(static_cast<std::int64_t>(items_.size()));
  if (done) done(S_OK, results);
}

void OpcGroupObject::SetDeadband(double percent, AckHandler done) {
  if (percent < 0.0 || percent > 100.0) {
    if (done) done(E_INVALIDARG);
    return;
  }
  deadband_percent_ = percent;
  if (done) done(S_OK);
}

void OpcGroupObject::RemoveItems(const std::vector<std::string>& item_ids, AckHandler done) {
  for (const auto& id : item_ids) {
    auto it = items_.find(id);
    if (it == items_.end()) continue;
    device_->hub().unsubscribe(sub_, it->second);
    watch_.erase(it->second);
    items_.erase(it);
  }
  gauge_items_.set(static_cast<std::int64_t>(items_.size()));
  if (done) done(S_OK);
}

std::vector<ItemState> OpcGroupObject::read_items(const std::vector<std::string>& ids) const {
  sim::SimTime now = process_->sim().now();
  std::vector<ItemState> out;
  out.reserve(ids.size());
  for (const auto& id : ids) out.push_back(device_->read(id, now));
  return out;
}

void OpcGroupObject::SyncRead(const std::vector<std::string>& item_ids, ReadHandler done) {
  if (done) done(S_OK, read_items(item_ids));
}

void OpcGroupObject::AsyncRead(std::uint32_t transaction, AckHandler done) {
  if (!callback_) {
    if (done) done(E_FAIL);  // no callback registered (CONNECT_E_NOCONNECTION)
    return;
  }
  if (done) done(S_OK);
  std::vector<std::string> ids;
  ids.reserve(items_.size());
  for (const auto& [id, _] : items_) ids.push_back(id);
  // Complete on a later turn, as a real async transaction would.
  auto cb = callback_;
  process_->main_strand().schedule_after(sim::microseconds(50),
                                         [this, cb, transaction, ids = std::move(ids)] {
                                           cb->OnReadComplete(transaction, S_OK, read_items(ids));
                                         });
}

void OpcGroupObject::Write(const std::vector<std::pair<std::string, OpcValue>>& values,
                           ResultsHandler done) {
  sim::SimTime now = process_->sim().now();
  std::vector<HRESULT> results;
  results.reserve(values.size());
  for (const auto& [tag, value] : values) {
    results.push_back(device_->write(tag, value, now));
  }
  if (done) done(S_OK, results);
}

void OpcGroupObject::mark_reannounce() {
  // Last-notified state is void, the observed deadband range survives
  // (the range reflects the item, not the sink).
  for (auto& [tag, w] : watch_) w.seen = false;
  device_->hub().mark_all_pending(sub_);
}

void OpcGroupObject::SetCallback(com::ComPtr<IOPCDataCallback> callback, AckHandler done) {
  callback_ = std::move(callback);
  mark_reannounce();  // re-announce everything to the new sink
  if (done) done(S_OK);
}

void OpcGroupObject::SetActive(bool active, AckHandler done) {
  active_ = active;
  if (done) done(S_OK);
}

void OpcGroupObject::EnableBatchedNotify(const std::vector<std::string>& item_ids,
                                         int sink_node, std::uint32_t sub_id,
                                         ItemIdsHandler done) {
  if (sink_node < 0) {
    if (done) done(E_INVALIDARG, {});
    return;
  }
  std::vector<std::uint32_t> tags;
  tags.reserve(item_ids.size());
  for (const auto& id : item_ids) tags.push_back(device_->store().find(id));
  batch_node_ = sink_node;
  batch_sub_ = sub_id;
  mark_reannounce();  // the new sink starts from a full announce
  if (done) done(S_OK, tags);
}

void OpcGroupObject::update_tick() {
  if (!active_ || items_.empty()) return;
  bool batched = batch_node_ >= 0;
  if (!callback_ && !batched) return;
  sim::SimTime now = process_->sim().now();
  SubscriptionHub& hub = device_->hub();
  hub.pump(now);
  hub.take_pending(sub_, scratch_);
  if (scratch_.empty()) return;

  std::vector<ItemState> changed;
  std::vector<NotifyItem> batch;
  std::uint64_t suppressed = 0;
  for (TagId tag : scratch_) {
    ItemState s = device_->read_id(tag, now);
    Watch& w = watch_[tag];
    // Track the observed range for percent-deadband evaluation. The
    // current sample joins the range *before* the suppression check
    // (seed behavior): ranges warm up monotonically, and the very
    // first change sees delta == range, which is never below any
    // deadband fraction — first change always notifies.
    if (s.value.is_real() || s.value.is_int()) {
      double v = s.value.as_real();
      if (!w.range_init) {
        w.range_init = true;
        w.range_min = w.range_max = v;
      } else {
        w.range_min = std::min(w.range_min, v);
        w.range_max = std::max(w.range_max, v);
      }
    }
    bool announce = !w.seen || w.quality != s.quality;
    if (!announce && w.value != s.value) {
      announce = true;
      if (deadband_percent_ > 0.0 && (s.value.is_real() || s.value.is_int())) {
        double range = w.range_init ? w.range_max - w.range_min : 0.0;
        double delta = std::abs(s.value.as_real() - w.value.as_real());
        if (range > 0.0 && delta < range * deadband_percent_ / 100.0) {
          announce = false;
          ++suppressed;
        }
      }
    }
    if (announce) {
      w.seen = true;
      w.value = s.value;
      w.quality = s.quality;
      if (batched) {
        batch.push_back(NotifyItem{tag, s.quality, s.value, s.timestamp});
      } else {
        changed.push_back(std::move(s));
      }
    }
  }

  std::uint64_t announced = batched ? batch.size() : changed.size();
  notified_total_ += announced;
  suppressed_total_ += suppressed;
  ctr_notified_.inc(announced);
  ctr_suppressed_.inc(suppressed);
  if (announced + suppressed > 0) {
    // Batch-shape event, rate-bounded: publish only when the log2
    // bucket pair (announced, suppressed) moves — chaos coverage sees
    // every distinct shape class without per-tick event spam.
    std::uint64_t key = (log2_bucket(announced) << 8) | log2_bucket(suppressed);
    if (key != last_batch_key_) {
      last_batch_key_ = key;
      obs::Event e;
      e.kind = obs::EventKind::kOpcBatch;
      e.node = process_->node().id();
      e.component = device_->name();
      e.unit = name_;
      e.a = announced;
      e.b = suppressed;
      process_->sim().telemetry().bus().publish(e);
    }
  }

  if (batched) {
    if (!batch.empty()) {
      // scratch_ (and therefore batch) is TagId-sorted from
      // take_pending — a deterministic compact order for the wire.
      NotifyPlane::of(*process_).enqueue(batch_node_, batch_sub_, std::move(batch));
    }
    return;
  }
  if (!changed.empty()) {
    // The seed announced in lexicographic item order (it walked a
    // std::set<std::string>); preserve that observable order.
    std::sort(changed.begin(), changed.end(),
              [](const ItemState& a, const ItemState& b) { return a.item_id < b.item_id; });
    callback_->OnDataChange(0, changed);
  }
}

OpcServerObject::OpcServerObject(sim::Process& process, std::shared_ptr<Device> device,
                                 std::string vendor)
    : process_(&process),
      device_(std::move(device)),
      vendor_(std::move(vendor)),
      start_time_(process.sim().now()) {}

void OpcServerObject::GetStatus(StatusHandler done) {
  ServerStatus s;
  s.start_time = start_time_;
  s.current_time = process_->sim().now();
  s.group_count = static_cast<std::uint32_t>(groups_.size());
  s.vendor = vendor_;
  s.running = !device_->faulted();
  if (done) done(S_OK, s);
}

void OpcServerObject::AddGroup(const std::string& name, sim::SimTime update_rate,
                               GroupHandler done) {
  if (groups_.count(name) != 0) {
    if (done) done(E_INVALIDARG, {});
    return;
  }
  auto group = OpcGroupObject::create(*process_, device_, name, update_rate);
  groups_[name] = group;
  if (done) done(S_OK, com::ComPtr<IOPCGroup>(group.get()));
}

void OpcServerObject::BrowseItemIds(const std::string& filter, BrowseHandler done) {
  std::vector<std::string> out;
  for (const auto& tag : device_->tags()) {
    if (filter.empty() || tag.find(filter) != std::string::npos) out.push_back(tag);
  }
  if (done) done(S_OK, out);
}

void OpcServerObject::RemoveGroup(const std::string& name, AckHandler done) {
  if (done) done(groups_.erase(name) > 0 ? S_OK : E_INVALIDARG);
}

void install_opc_server(sim::Process& process, const Clsid& clsid,
                        std::shared_ptr<Device> device, const std::string& vendor) {
  ensure_opc_proxy_stubs_registered();
  device->start(process.main_strand(),
                process.sim().fork_rng(device->name()));
  auto& com_rt = com::ComRuntime::of(process);
  auto factory = com::LambdaClassFactory::create(
      [proc = &process, device, vendor](com::REFIID iid, void** ppv) -> HRESULT {
        auto server = OpcServerObject::create(*proc, device, vendor);
        return server->QueryInterface(iid, ppv);
      });
  com_rt.register_class(clsid, com::ComPtr<com::IClassFactory>(factory.get()), vendor);
  dcom::OrpcServer::of(process).register_server_class(clsid, vendor);
}

}  // namespace oftt::opc
