// TagStore: the sharded, interned point store behind every OPC Device.
//
// The seed kept device points in a std::map<std::string, ItemState> and
// every subscription group re-read every item by string each tick —
// O(items × groups) per tick with string compares on the hot path. At
// the roadmap's scale (10⁶ tags, 10⁴ subscribed clients) that collapses.
// TagStore replaces it with:
//
//  - string → dense TagId interning: tag names are resolved to a
//    std::uint32_t exactly once (AddItems / add_input time); every hot
//    path after that is an array index.
//  - a fixed power-of-two shard count. A tag's shard is `id & mask`, its
//    slot within the shard `id >> shard_bits`, so sequential interning
//    round-robins tags across shards and every shard's slot arrays stay
//    dense.
//  - per-shard version counters and dirty lists: set() appends a tag to
//    its shard's dirty list only on a value/quality *change* (timestamp
//    refreshes alone are not changes), so a scan cycle that rewrites
//    10⁶ mostly-constant points costs O(actually-changed) downstream.
//  - optional nt::Region binding: each shard mirrors its numeric slots
//    into a named checkpointable region ("<prefix>.<shard>"), marking
//    precise slot-sized dirty ranges. FTIM delta checkpoints of a bound
//    store are therefore proportional to the mutation rate, not the tag
//    count — the property that keeps warm-passive streaming small and
//    switchover sub-second with a million-point live state. String
//    values stay RAM-only (slot type kSlotString, payload not
//    restorable); processes that fail over string tags re-learn them
//    from the device scan.
//
// SubscriptionHub rides on top: an inverted TagId → subscriber index
// that routes drained dirty lists into per-subscription pending sets.
// Groups consume their pending set at their own update rate — two
// groups at different rates each see every change exactly once.
//
// Determinism: interning order is the caller's insertion order, dirty
// lists preserve mutation order, and drain/pump walk shards in index
// order — byte-identical event histories per seed, as everywhere else.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "opc/value.h"

namespace oftt::nt {
class MemorySpace;
class Region;
}  // namespace oftt::nt

namespace oftt::opc {

using TagId = std::uint32_t;
inline constexpr TagId kInvalidTagId = 0xFFFFFFFFu;

class TagStore {
 public:
  /// Fixed 24-byte checkpoint slot: [u8 type][u8 quality][6B pad]
  /// [u64 payload][i64 last-change timestamp].
  static constexpr std::size_t kSlotBytes = 24;

  explicit TagStore(int shard_count = 16);

  int shard_count() const { return static_cast<int>(shards_.size()); }
  std::size_t size() const { return names_.size(); }
  int shard_of(TagId id) const { return static_cast<int>(id & shard_mask_); }

  /// Resolve-or-create. Ids are dense, assigned in interning order.
  TagId intern(std::string_view name);
  /// Resolve only; kInvalidTagId when unknown.
  TagId find(std::string_view name) const;
  const std::string& name(TagId id) const { return names_[id]; }
  /// Every tag name, lexicographically sorted (the browse order the
  /// seed's std::map gave for free).
  std::vector<std::string> sorted_names() const;

  /// Store (value, quality) and refresh the timestamp. Returns true —
  /// and marks the tag dirty, bumps its shard version — only when the
  /// value or quality actually changed.
  bool set(TagId id, const OpcValue& value, Quality quality, sim::SimTime now);

  const OpcValue& value(TagId id) const;
  Quality quality(TagId id) const;
  sim::SimTime timestamp(TagId id) const;

  std::uint64_t shard_version(int shard) const { return shards_[static_cast<std::size_t>(shard)].version; }
  /// Total value/quality changes across all shards since construction.
  std::uint64_t mutations() const { return mutations_; }
  std::size_t dirty_count() const;

  /// Drain every shard's dirty list (shard index order, append order
  /// within a shard), invoking fn(TagId) per changed tag, and clear the
  /// dirty marks. O(changed), not O(tags).
  template <typename Fn>
  void drain_dirty(Fn&& fn) {
    for (Shard& sh : shards_) {
      for (TagId id : sh.dirty_list) {
        sh.dirty[slot_of(id)] = 0;
        fn(id);
      }
      sh.dirty_list.clear();
    }
  }

  // --- checkpoint sharding ---

  /// Mirror numeric slots into one nt::Region per shard, named
  /// "<prefix>.<shard>". Regions are sized for the tags interned so
  /// far (tags interned later stay RAM-only); each region's dirty-range
  /// cap is raised so scattered per-slot marks never degrade to a
  /// full-region delta. Call after interning, before the first
  /// checkpoint.
  void bind_regions(nt::MemorySpace& memory, const std::string& prefix);
  bool bound() const { return bound_; }

  /// Rebuild slot values from the (restored) regions — the backup-side
  /// half of a failover: FTIM restored region bytes, the store re-reads
  /// them. Tags beyond a region's capacity and string-typed slots are
  /// left untouched.
  void reload_from_regions();

 private:
  enum SlotType : std::uint8_t {
    kSlotEmpty = 0,
    kSlotBool = 1,
    kSlotInt = 2,
    kSlotReal = 3,
    kSlotString = 4,  // payload not checkpointable; value stays RAM-only
  };

  struct Shard {
    std::vector<OpcValue> values;
    std::vector<Quality> quality;
    std::vector<sim::SimTime> stamps;
    std::vector<std::uint8_t> dirty;
    std::vector<TagId> dirty_list;
    std::uint64_t version = 0;
    nt::Region* region = nullptr;
    std::size_t region_slots = 0;
  };

  std::size_t slot_of(TagId id) const { return id >> shard_bits_; }
  void write_slot(Shard& sh, std::size_t slot, const OpcValue& v, Quality q,
                  sim::SimTime now);

  std::vector<Shard> shards_;
  std::uint32_t shard_mask_ = 0;
  int shard_bits_ = 0;
  std::map<std::string, TagId, std::less<>> ids_;
  std::vector<std::string> names_;
  std::uint64_t mutations_ = 0;
  bool bound_ = false;
};

/// Routes TagStore changes to subscriptions. One hub per Device; each
/// OpcGroupObject (or any other consumer) holds one subscription.
class SubscriptionHub {
 public:
  using SubId = std::uint32_t;

  explicit SubscriptionHub(TagStore& store) : store_(&store) {}

  SubId add_subscription();
  void remove_subscription(SubId sub);

  /// Subscribe the tag and mark it pending — a fresh subscription's
  /// first tick always announces every item (OPC initial-update
  /// semantics), whether or not the store mutates meanwhile.
  void subscribe(SubId sub, TagId tag);
  void unsubscribe(SubId sub, TagId tag);

  /// Re-announce: every subscribed tag of `sub` back to pending.
  void mark_all_pending(SubId sub);
  /// Re-announce everything for everyone — the device-fault path, where
  /// quality flips BAD/GOOD without any store mutation.
  void invalidate_all();

  /// Drain the store's dirty lists into subscribers' pending sets.
  /// Idempotent per sim timestamp, so every group tick sharing a
  /// timestamp pays for one drain.
  void pump(sim::SimTime now);

  /// Move sub's pending tags (sorted by TagId, deduplicated) into out.
  void take_pending(SubId sub, std::vector<TagId>& out);

  std::uint64_t routed() const { return routed_; }

 private:
  struct Sub {
    bool live = false;
    /// tag -> pending flag (dedups pending list entries).
    std::map<TagId, bool> tags;
    std::vector<TagId> pending;
  };

  TagStore* store_;
  std::vector<std::vector<SubId>> subs_by_tag_;
  std::vector<Sub> subs_;
  sim::SimTime last_pump_ = -1;
  std::uint64_t routed_ = 0;
};

}  // namespace oftt::opc
