// Device: the simulated "device driver" an OPC server encapsulates —
// the PLC plus its sensors and actuators. The fieldbus below the driver
// is abstracted away (as it is below a real OPC server): a device's
// points update on its scan cycle inside the hosting process.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/hresult.h"
#include "opc/value.h"
#include "sim/process.h"
#include "sim/rng.h"
#include "sim/timer.h"

namespace oftt::opc {

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  const std::string& name() const { return name_; }

  /// Called once by the hosting process; devices install their timers
  /// on the given strand.
  virtual void start(sim::Strand& strand, sim::Rng rng) {
    (void)strand;
    (void)rng;
  }

  std::vector<std::string> tags() const;
  bool has_tag(const std::string& tag) const { return points_.count(tag) != 0; }

  /// Read a point; unknown tags and faulted devices read back with BAD
  /// quality (OPC semantics — reads do not fail, quality degrades).
  ItemState read(const std::string& tag, sim::SimTime now) const;

  /// Write a point; devices decide which tags are writable.
  virtual HRESULT write(const std::string& tag, const OpcValue& value, sim::SimTime now);

  /// Fault injection: a faulted device answers all reads with BAD
  /// quality (dead fieldbus / dead PLC).
  void set_faulted(bool faulted) { faulted_ = faulted; }
  bool faulted() const { return faulted_; }

 protected:
  void set_point(const std::string& tag, OpcValue value, sim::SimTime now,
                 Quality quality = Quality::kGood);

 private:
  std::string name_;
  std::map<std::string, ItemState> points_;
  bool faulted_ = false;
};

/// Signal models for simulated analog/discrete inputs.
class SignalModel {
 public:
  virtual ~SignalModel() = default;
  virtual OpcValue sample(double t_seconds, sim::Rng& rng) = 0;
};

class SineSignal final : public SignalModel {
 public:
  SineSignal(double offset, double amplitude, double period_s, double noise = 0.0)
      : offset_(offset), amplitude_(amplitude), period_s_(period_s), noise_(noise) {}
  OpcValue sample(double t, sim::Rng& rng) override;

 private:
  double offset_, amplitude_, period_s_, noise_;
};

class RandomWalkSignal final : public SignalModel {
 public:
  RandomWalkSignal(double start, double step, double min, double max)
      : value_(start), step_(step), min_(min), max_(max) {}
  OpcValue sample(double t, sim::Rng& rng) override;

 private:
  double value_, step_, min_, max_;
};

class SquareSignal final : public SignalModel {
 public:
  explicit SquareSignal(double period_s) : period_s_(period_s) {}
  OpcValue sample(double t, sim::Rng& rng) override;

 private:
  double period_s_;
};

class CounterSignal final : public SignalModel {
 public:
  OpcValue sample(double t, sim::Rng& rng) override;

 private:
  std::int32_t count_ = 0;
};

/// A PLC: inputs sampled from signal models each scan cycle, writable
/// outputs held as commanded.
class PlcDevice : public Device {
 public:
  PlcDevice(std::string name, sim::SimTime scan_period)
      : Device(std::move(name)), scan_period_(scan_period) {}

  void add_input(const std::string& tag, std::unique_ptr<SignalModel> model);
  void add_output(const std::string& tag, OpcValue initial);

  void start(sim::Strand& strand, sim::Rng rng) override;
  HRESULT write(const std::string& tag, const OpcValue& value, sim::SimTime now) override;

  std::uint64_t scan_count() const { return scans_; }

 private:
  void scan();

  sim::SimTime scan_period_;
  std::map<std::string, std::unique_ptr<SignalModel>> inputs_;
  std::vector<std::string> outputs_;
  std::unique_ptr<sim::PeriodicTimer> scan_timer_;
  sim::Strand* strand_ = nullptr;
  sim::Rng rng_{0};
  std::uint64_t scans_ = 0;
};

}  // namespace oftt::opc
