// Device: the simulated "device driver" an OPC server encapsulates —
// the PLC plus its sensors and actuators. The fieldbus below the driver
// is abstracted away (as it is below a real OPC server): a device's
// points update on its scan cycle inside the hosting process.
//
// Points live in a sharded TagStore (string → dense TagId interning,
// per-shard dirty lists); the string read/write API below is preserved
// from the original std::map-backed device, while subscription groups
// and benches use the TagId fast paths. A SubscriptionHub per device
// routes store changes to groups, so a group tick costs O(changed)
// rather than O(items).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/hresult.h"
#include "opc/tag_store.h"
#include "opc/value.h"
#include "sim/process.h"
#include "sim/rng.h"
#include "sim/timer.h"

namespace oftt::opc {

class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  const std::string& name() const { return name_; }

  /// Called once by the hosting process; devices install their timers
  /// on the given strand. Overrides must call the base first — it
  /// records the strand, which fault events publish through.
  virtual void start(sim::Strand& strand, sim::Rng rng) {
    (void)rng;
    host_strand_ = &strand;
  }

  TagStore& store() { return store_; }
  const TagStore& store() const { return store_; }
  SubscriptionHub& hub() { return hub_; }

  std::vector<std::string> tags() const { return store_.sorted_names(); }
  bool has_tag(const std::string& tag) const {
    return store_.find(tag) != kInvalidTagId;
  }

  /// Read a point; unknown tags and faulted devices read back with BAD
  /// quality (OPC semantics — reads do not fail, quality degrades).
  ItemState read(const std::string& tag, sim::SimTime now) const;
  /// TagId fast path; `id` must be a valid interned id.
  ItemState read_id(TagId id, sim::SimTime now) const;

  /// Write a point; devices decide which tags are writable.
  virtual HRESULT write(const std::string& tag, const OpcValue& value, sim::SimTime now);

  /// Fault injection: a faulted device answers all reads with BAD
  /// quality (dead fieldbus / dead PLC). Toggling invalidates every
  /// subscription — the BAD-quality storm (and the all-GOOD recovery)
  /// must reach subscribers even though no store value changed.
  void set_faulted(bool faulted);
  bool faulted() const { return faulted_; }

 protected:
  void set_point(const std::string& tag, OpcValue value, sim::SimTime now,
                 Quality quality = Quality::kGood);
  /// TagId fast path for scan loops that pre-intern their tags.
  void set_point_id(TagId id, const OpcValue& value, sim::SimTime now,
                    Quality quality = Quality::kGood) {
    store_.set(id, value, quality, now);
  }

  sim::Strand* host_strand_ = nullptr;

 private:
  std::string name_;
  TagStore store_;
  SubscriptionHub hub_{store_};
  bool faulted_ = false;
};

/// Signal models for simulated analog/discrete inputs.
class SignalModel {
 public:
  virtual ~SignalModel() = default;
  virtual OpcValue sample(double t_seconds, sim::Rng& rng) = 0;
};

class SineSignal final : public SignalModel {
 public:
  SineSignal(double offset, double amplitude, double period_s, double noise = 0.0)
      : offset_(offset), amplitude_(amplitude), period_s_(period_s), noise_(noise) {}
  OpcValue sample(double t, sim::Rng& rng) override;

 private:
  double offset_, amplitude_, period_s_, noise_;
};

class RandomWalkSignal final : public SignalModel {
 public:
  RandomWalkSignal(double start, double step, double min, double max)
      : value_(start), step_(step), min_(min), max_(max) {}
  OpcValue sample(double t, sim::Rng& rng) override;

 private:
  double value_, step_, min_, max_;
};

class SquareSignal final : public SignalModel {
 public:
  explicit SquareSignal(double period_s) : period_s_(period_s) {}
  OpcValue sample(double t, sim::Rng& rng) override;

 private:
  double period_s_;
};

class CounterSignal final : public SignalModel {
 public:
  OpcValue sample(double t, sim::Rng& rng) override;

 private:
  std::int32_t count_ = 0;
};

/// A PLC: inputs sampled from signal models each scan cycle, writable
/// outputs held as commanded.
class PlcDevice : public Device {
 public:
  PlcDevice(std::string name, sim::SimTime scan_period)
      : Device(std::move(name)), scan_period_(scan_period) {}

  void add_input(const std::string& tag, std::unique_ptr<SignalModel> model);
  void add_output(const std::string& tag, OpcValue initial);

  void start(sim::Strand& strand, sim::Rng rng) override;
  HRESULT write(const std::string& tag, const OpcValue& value, sim::SimTime now) override;

  std::uint64_t scan_count() const { return scans_; }

 private:
  void scan();

  struct Input {
    std::unique_ptr<SignalModel> model;
    TagId id = kInvalidTagId;
  };

  sim::SimTime scan_period_;
  /// Lexicographic map: the scan samples inputs (and draws rng_) in tag
  /// order — part of the determinism contract with the seed.
  std::map<std::string, Input> inputs_;
  std::vector<std::string> outputs_;
  std::unique_ptr<sim::PeriodicTimer> scan_timer_;
  sim::Strand* strand_ = nullptr;
  sim::Rng rng_{0};
  std::uint64_t scans_ = 0;
};

}  // namespace oftt::opc
