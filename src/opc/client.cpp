#include "opc/client.h"

#include "common/logging.h"
#include "opc/notify.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::opc {

OpcConnection::OpcConnection(sim::Process& process, int server_node, const Clsid& clsid,
                             Config config)
    : process_(&process),
      server_node_(server_node),
      clsid_(clsid),
      config_(config),
      staleness_timer_(process.main_strand()) {
  ensure_opc_proxy_stubs_registered();
}

OpcConnection::~OpcConnection() {
  staleness_timer_.stop();
  if (notify_sub_id_ != 0) NotifyPlane::of(*process_).unregister_sink(notify_sub_id_);
}

void OpcConnection::subscribe(std::vector<std::string> items,
                              std::function<void(const std::vector<ItemState>&)> on_data) {
  items_ = std::move(items);
  on_data_ = std::move(on_data);
  subscribed_ = true;
  if (config_.staleness_timeout > 0) {
    staleness_timer_.start(config_.staleness_timeout, [this] {
      if (!connected()) return;
      sim::SimTime now = process_->sim().now();
      if (now - last_update_ >= config_.staleness_timeout) {
        OFTT_LOG_WARN("opc/client", process_->name(), ": subscription stale, reconnecting");
        fail("staleness", RPC_E_DISCONNECTED);
      }
    });
  }
  connect();
}

void OpcConnection::connect() {
  if (connecting_ || !subscribed_) return;
  connecting_ = true;
  std::uint64_t gen = ++generation_;
  server_ = nullptr;
  group_ = nullptr;

  auto& orpc = dcom::OrpcClient::of(*process_);
  orpc.activate(server_node_, clsid_, IOPCServer::iid(),
                [this, gen](HRESULT hr, const dcom::ObjectRef& ref) {
    if (gen != generation_) return;
    if (FAILED(hr)) {
      fail("activate", hr);
      return;
    }
    auto unk = dcom::OrpcClient::of(*process_).unmarshal(ref);
    server_ = unk.as<IOPCServer>();
    if (!server_) {
      fail("unmarshal", E_NOINTERFACE);
      return;
    }
    server_->AddGroup("sub", config_.update_rate, [this, gen](HRESULT hr2,
                                                              com::ComPtr<IOPCGroup> group) {
      if (gen != generation_) return;
      if (FAILED(hr2)) {
        fail("AddGroup", hr2);
        return;
      }
      group_ = std::move(group);
      group_->AddItems(items_, [this, gen](HRESULT hr3, const std::vector<HRESULT>&) {
        if (gen != generation_) return;
        if (FAILED(hr3)) {
          fail("AddItems", hr3);
          return;
        }
        if (config_.batched_notifications) {
          enable_batched(gen);
          return;
        }
        if (!sink_) {
          sink_ = DataSink::create(
              [this](std::uint32_t, const std::vector<ItemState>& items) { on_update(items); });
        }
        group_->SetCallback(com::ComPtr<IOPCDataCallback>(sink_.get()),
                            [this, gen](HRESULT hr4) {
          if (gen != generation_) return;
          if (FAILED(hr4)) {
            fail("SetCallback", hr4);
            return;
          }
          finish_subscribe(gen);
        });
      });
    });
  });
}

void OpcConnection::enable_batched(std::uint64_t gen) {
  auto& plane = NotifyPlane::of(*process_);
  if (notify_sub_id_ == 0) {
    notify_sub_id_ = plane.allocate_sub_id();
    plane.register_sink(notify_sub_id_, [this](const SubBatch& batch) {
      std::vector<ItemState> items;
      items.reserve(batch.items.size());
      for (const NotifyItem& it : batch.items) {
        auto name = tag_names_.find(it.tag);
        if (name == tag_names_.end()) continue;  // unknown TagId: stale mapping
        items.push_back(ItemState{name->second, it.value, it.quality, it.timestamp});
      }
      if (!items.empty()) on_update(items);
    });
  }
  group_->EnableBatchedNotify(
      items_, process_->node().id(), notify_sub_id_,
      [this, gen](HRESULT hr, const std::vector<std::uint32_t>& tags) {
        if (gen != generation_) return;
        if (FAILED(hr) || tags.size() != items_.size()) {
          fail("EnableBatchedNotify", FAILED(hr) ? hr : E_UNEXPECTED);
          return;
        }
        tag_names_.clear();
        for (std::size_t i = 0; i < tags.size(); ++i) {
          if (tags[i] != kInvalidTagId) tag_names_[tags[i]] = items_[i];
        }
        finish_subscribe(gen);
      });
}

void OpcConnection::finish_subscribe(std::uint64_t gen) {
  if (gen != generation_) return;
  connecting_ = false;
  last_update_ = process_->sim().now();
  OFTT_LOG_INFO("opc/client", process_->name(), ": subscribed to ", items_.size(),
                " items on node ", server_node_,
                config_.batched_notifications ? " (batched)" : "");
}

void OpcConnection::fail(const char* where, HRESULT hr) {
  ++failures_;
  OFTT_LOG_DEBUG("opc/client", process_->name(), ": ", where, " failed: ",
                 hresult_to_string(hr), ", retrying in ",
                 sim::to_millis(config_.retry_backoff), " ms");
  ++generation_;  // invalidate any in-flight continuation
  connecting_ = false;
  server_ = nullptr;
  group_ = nullptr;
  ++reconnects_;
  process_->main_strand().schedule_after(config_.retry_backoff, [this] { connect(); });
}

void OpcConnection::on_update(const std::vector<ItemState>& items) {
  last_update_ = process_->sim().now();
  ++updates_;
  if (on_data_) on_data_(items);
}

void OpcConnection::browse(const std::string& filter, BrowseHandler done) {
  auto& orpc = dcom::OrpcClient::of(*process_);
  orpc.activate(server_node_, clsid_, IOPCBrowse::iid(),
                [this, filter, done](HRESULT hr, const dcom::ObjectRef& ref) {
    if (FAILED(hr)) {
      if (done) done(hr, {});
      return;
    }
    auto browse = dcom::OrpcClient::of(*process_).unmarshal(ref).as<IOPCBrowse>();
    if (!browse) {
      if (done) done(E_NOINTERFACE, {});
      return;
    }
    browse->BrowseItemIds(filter, done);
  });
}

void OpcConnection::read(const std::vector<std::string>& items, ReadHandler done) {
  if (!group_) {
    if (done) done(RPC_E_DISCONNECTED, {});
    return;
  }
  group_->SyncRead(items, std::move(done));
}

void OpcConnection::write(const std::string& tag, const OpcValue& value, AckHandler done) {
  if (!group_) {
    if (done) done(E_FAIL);
    return;
  }
  group_->Write({{tag, value}}, [done](HRESULT hr, const std::vector<HRESULT>& hrs) {
    if (SUCCEEDED(hr) && !hrs.empty()) hr = hrs.front();
    if (done) done(hr);
  });
}

}  // namespace oftt::opc
