#include "opc/notify.h"

#include "common/logging.h"
#include "common/strings.h"
#include "obs/event_bus.h"
#include "sim/node.h"
#include "sim/simulation.h"

namespace oftt::opc {

namespace {

constexpr const char* kNotifyPort = "opc.notify";

/// Minimum encoded sizes, used to bound claimed counts against the
/// bytes actually present (fail-closed against count-bomb frames).
constexpr std::size_t kMinBatchBytes = 4 + 4;           // sub_id + item count
constexpr std::size_t kMinItemBytes = 4 + 1 + 1 + 8;    // tag + quality + value tag + ts

bool valid_quality(std::uint8_t q) {
  return q == static_cast<std::uint8_t>(Quality::kBad) ||
         q == static_cast<std::uint8_t>(Quality::kUncertain) ||
         q == static_cast<std::uint8_t>(Quality::kGood);
}

}  // namespace

Buffer encode_notify_frame(const std::vector<SubBatch>& batches) {
  BinaryWriter w;
  w.u8(kNotifyFrame);
  w.u8(kNotifyVersion);
  w.u32(static_cast<std::uint32_t>(batches.size()));
  for (const SubBatch& b : batches) {
    w.u32(b.sub_id);
    w.u32(static_cast<std::uint32_t>(b.items.size()));
    for (const NotifyItem& it : b.items) {
      w.u32(it.tag);
      w.u8(static_cast<std::uint8_t>(it.quality));
      it.value.marshal(w);
      w.i64(it.timestamp);
    }
  }
  return std::move(w).take();
}

bool decode_notify_frame(const Buffer& payload, std::vector<SubBatch>* out) {
  out->clear();
  BinaryReader r(payload);
  if (r.u8() != kNotifyFrame) return false;
  if (r.u8() != kNotifyVersion) return false;
  std::uint32_t nbatches = r.u32();
  if (r.failed() || nbatches > r.remaining() / kMinBatchBytes) return false;
  out->reserve(nbatches);
  for (std::uint32_t b = 0; b < nbatches; ++b) {
    SubBatch batch;
    batch.sub_id = r.u32();
    std::uint32_t nitems = r.u32();
    if (r.failed() || nitems > r.remaining() / kMinItemBytes) {
      out->clear();
      return false;
    }
    batch.items.reserve(nitems);
    for (std::uint32_t i = 0; i < nitems; ++i) {
      NotifyItem item;
      item.tag = r.u32();
      std::uint8_t q = r.u8();
      item.value = OpcValue::unmarshal(r);
      item.timestamp = r.i64();
      if (r.failed() || !valid_quality(q)) {
        out->clear();
        return false;
      }
      item.quality = static_cast<Quality>(q);
      batch.items.push_back(std::move(item));
    }
    out->push_back(std::move(batch));
  }
  if (r.failed() || !r.at_end()) {
    out->clear();
    return false;
  }
  return true;
}

transport::SessionConfig NotifyPlane::default_config() {
  transport::SessionConfig sc;
  sc.networks = {0};
  // Notification frames are high-rate and latest-wins; a deep queue
  // only adds staleness. Reject on overflow and surface the drop.
  sc.queue_cap = 256;
  sc.queue_policy = transport::QueuePolicy::kReject;
  return sc;
}

NotifyPlane::NotifyPlane(sim::Process& process, transport::SessionConfig config)
    : process_(&process),
      started_at_(process.sim().now()),
      ctr_notifications_(
          process.sim().telemetry().metrics().counter("oftt.opc.notifications")),
      ctr_bytes_(process.sim().telemetry().metrics().counter("oftt.opc.coalesced_bytes")),
      ctr_frames_(process.sim().telemetry().metrics().counter("oftt.opc.frames")),
      ctr_drops_(process.sim().telemetry().metrics().counter("oftt.opc.batch_drops")),
      rate_notifications_(
          process.sim().telemetry().metrics().gauge("oftt.opc.notifications_per_s")),
      rate_bytes_(
          process.sim().telemetry().metrics().gauge("oftt.opc.coalesced_bytes_per_s")),
      hist_latency_(process.sim().telemetry().metrics().histogram(
          "oftt.opc.update_to_notify_ns",
          {100'000, 300'000, 1'000'000, 3'000'000, 10'000'000, 30'000'000, 100'000'000,
           300'000'000, 1'000'000'000})) {
  process_->bind(kNotifyPort, [this](const sim::Datagram& d) {
    if (ep_ && ep_->handle(d)) return;
    // Nothing but transport frames rides this port.
  });
  ep_ = std::make_unique<transport::Endpoint>(process.main_strand(), kNotifyPort,
                                              std::move(config));
  ep_->on_deliver(
      [this](int src, int, const Buffer& payload) { on_frame(src, payload); });
}

NotifyPlane& NotifyPlane::of(sim::Process& process) {
  return process.attachment<NotifyPlane>(process);
}

obs::Gauge& NotifyPlane::pending_gauge(int client_node) {
  auto it = pending_gauges_.find(client_node);
  if (it == pending_gauges_.end()) {
    it = pending_gauges_
             .emplace(client_node, process_->sim().telemetry().metrics().gauge(
                                       cat("oftt.opc.pending_batches.n", client_node)))
             .first;
  }
  return it->second;
}

void NotifyPlane::enqueue(int client_node, std::uint32_t sub_id,
                          std::vector<NotifyItem> items) {
  if (items.empty()) return;
  auto& batches = pending_[client_node];
  batches.push_back(SubBatch{sub_id, std::move(items)});
  pending_gauge(client_node).set(static_cast<std::int64_t>(batches.size()));
  if (flush_scheduled_.insert(client_node).second) {
    // Flush at t+0: every batch enqueued during this sim timestamp —
    // all groups of this client that ticked this instant — joins the
    // same frame.
    process_->main_strand().schedule_after(0, [this, client_node] { flush(client_node); });
  }
}

void NotifyPlane::flush(int client_node) {
  flush_scheduled_.erase(client_node);
  auto it = pending_.find(client_node);
  if (it == pending_.end() || it->second.empty()) return;
  std::vector<SubBatch> batches = std::move(it->second);
  pending_.erase(it);
  pending_gauge(client_node).set(0);

  std::uint64_t items = 0;
  for (const SubBatch& b : batches) items += b.items.size();
  Buffer frame = encode_notify_frame(batches);
  std::size_t frame_bytes = frame.size();
  if (!ep_->send(client_node, std::move(frame), /*tag=*/0, nullptr,
                 transport::kClassNotify)) {
    ++frames_rejected_;
    batches_dropped_ += batches.size();
    ctr_drops_.inc(batches.size());
    obs::Event e;
    e.kind = obs::EventKind::kOpcBatchDrop;
    e.node = process_->node().id();
    e.component = process_->name();
    e.detail = cat("notify queue full towards node ", client_node);
    e.a = static_cast<std::uint64_t>(client_node);
    e.b = batches_dropped_;
    process_->sim().telemetry().bus().publish(e);
    return;
  }
  ++frames_sent_;
  notifications_sent_ += items;
  ctr_frames_.inc();
  ctr_notifications_.inc(items);
  ctr_bytes_.inc(frame_bytes);
  sim::SimTime elapsed = process_->sim().now() - started_at_;
  if (elapsed > 0) {
    double secs = sim::to_seconds(elapsed);
    rate_notifications_.set(
        static_cast<std::int64_t>(static_cast<double>(ctr_notifications_.value()) / secs));
    rate_bytes_.set(
        static_cast<std::int64_t>(static_cast<double>(ctr_bytes_.value()) / secs));
  }
}

void NotifyPlane::on_frame(int src_node, const Buffer& payload) {
  (void)src_node;
  std::vector<SubBatch> batches;
  if (!decode_notify_frame(payload, &batches)) {
    OFTT_LOG_WARN("opc/notify", process_->name(), ": malformed notify frame dropped");
    return;
  }
  ++frames_received_;
  sim::SimTime now = process_->sim().now();
  for (const SubBatch& b : batches) {
    notifications_received_ += b.items.size();
    for (const NotifyItem& item : b.items) {
      if (item.timestamp >= 0 && item.timestamp <= now) {
        hist_latency_.record(now - item.timestamp);
      }
    }
    auto sink = sinks_.find(b.sub_id);
    if (sink != sinks_.end() && sink->second) sink->second(b);
  }
}

}  // namespace oftt::opc
