// Client-side OPC conveniences: a lambda-backed IOPCDataCallback sink
// and OpcConnection, a small state machine that activates a remote OPC
// server, builds a group/items/callback subscription, and — because
// DCOM "does not behave well in the presence of failures" (§3.3) —
// watches for staleness and reconnects with backoff. This is exactly
// the compensation logic the paper says applications had to add.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "com/object.h"
#include "dcom/client.h"
#include "opc/interfaces.h"
#include "sim/timer.h"

namespace oftt::opc {

class DataSink final : public com::Object<DataSink, IOPCDataCallback> {
 public:
  using DataFn = std::function<void(std::uint32_t, const std::vector<ItemState>&)>;
  using ReadFn = std::function<void(std::uint32_t, HRESULT, const std::vector<ItemState>&)>;

  DataSink(DataFn on_data, ReadFn on_read = nullptr)
      : on_data_(std::move(on_data)), on_read_(std::move(on_read)) {}

  void OnDataChange(std::uint32_t transaction, const std::vector<ItemState>& items) override {
    if (on_data_) on_data_(transaction, items);
  }
  void OnReadComplete(std::uint32_t transaction, HRESULT hr,
                      const std::vector<ItemState>& items) override {
    if (on_read_) on_read_(transaction, hr, items);
  }

 private:
  DataFn on_data_;
  ReadFn on_read_;
};

struct OpcConnectionConfig {
  sim::SimTime update_rate = sim::milliseconds(100);
  sim::SimTime retry_backoff = sim::milliseconds(500);
  /// 0 disables the staleness watchdog; otherwise reconnect when no
  /// update arrives for this long.
  sim::SimTime staleness_timeout = 0;
  /// Subscribe through the coalesced notification plane
  /// (EnableBatchedNotify) instead of a per-group ORPC callback. The
  /// observable update stream is identical; updates for all batched
  /// groups of this client arrive coalesced into one frame per tick.
  bool batched_notifications = false;
};

class OpcConnection {
 public:
  using Config = OpcConnectionConfig;

  OpcConnection(sim::Process& process, int server_node, const Clsid& clsid,
                Config config = Config());
  ~OpcConnection();

  OpcConnection(const OpcConnection&) = delete;
  OpcConnection& operator=(const OpcConnection&) = delete;

  /// Begin (and maintain) a subscription; `on_data` runs for every
  /// OnDataChange batch.
  void subscribe(std::vector<std::string> items,
                 std::function<void(const std::vector<ItemState>&)> on_data);

  /// Browse the server's address space (works even before subscribe;
  /// activates its own stateless server instance).
  void browse(const std::string& filter, BrowseHandler done);

  /// One-shot read through the live group (fails if not connected).
  void read(const std::vector<std::string>& items, ReadHandler done);
  /// Write through the live group (fails if not connected).
  void write(const std::string& tag, const OpcValue& value, AckHandler done);

  bool connected() const { return static_cast<bool>(group_); }
  std::uint64_t updates_received() const { return updates_; }
  std::uint64_t reconnects() const { return reconnects_; }
  std::uint64_t failures_seen() const { return failures_; }

 private:
  void connect();
  void fail(const char* where, HRESULT hr);
  void on_update(const std::vector<ItemState>& items);
  void finish_subscribe(std::uint64_t gen);
  void enable_batched(std::uint64_t gen);

  sim::Process* process_;
  int server_node_;
  Clsid clsid_;
  Config config_;
  std::uint64_t generation_ = 0;  // invalidates in-flight setup steps
  bool subscribed_ = false;
  std::vector<std::string> items_;
  std::function<void(const std::vector<ItemState>&)> on_data_;
  com::ComPtr<IOPCServer> server_;
  com::ComPtr<IOPCGroup> group_;
  com::ComPtr<DataSink> sink_;
  /// Batched mode: the NotifyPlane demux key (0 until first connect)
  /// and TagId -> item name mapping learned from EnableBatchedNotify.
  std::uint32_t notify_sub_id_ = 0;
  std::map<std::uint32_t, std::string> tag_names_;
  sim::SimTime last_update_ = 0;
  std::uint64_t updates_ = 0, reconnects_ = 0, failures_ = 0;
  sim::PeriodicTimer staleness_timer_;
  bool connecting_ = false;
};

}  // namespace oftt::opc
