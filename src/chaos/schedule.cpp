#include "chaos/schedule.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "common/bytes.h"
#include "common/strings.h"

namespace oftt::chaos {

namespace {

constexpr const char* kOpNames[] = {
    "power_cycle", "os_crash",   "kill_app",  "kill_engine",     "hang_app",  "partition",
    "net_down",    "loss_burst", "dup_burst", "gilbert_burst",   "disk_fail",
    "probe_blackhole", "link_flap", "device_fault",
};
static_assert(sizeof(kOpNames) / sizeof(kOpNames[0]) ==
                  static_cast<std::size_t>(OpKind::kMaxOpKind),
              "op name table out of sync with OpKind");

std::int64_t parse_field(std::string_view line, std::string_view key) {
  // Fields are space-separated "key=value" tokens; integer-only.
  std::string needle = cat(" ", key, "=");
  auto pos = line.find(needle);
  if (pos == std::string_view::npos) {
    throw std::runtime_error(cat("chaos: op line missing field '", std::string(key),
                                 "': ", std::string(line)));
  }
  pos += needle.size();
  auto end = line.find(' ', pos);
  std::string value(line.substr(pos, end == std::string_view::npos ? end : end - pos));
  try {
    std::size_t consumed = 0;
    std::int64_t v = std::stoll(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(
        cat("chaos: bad integer for '", std::string(key), "': ", value));
  }
}

}  // namespace

const char* op_kind_name(OpKind kind) {
  auto i = static_cast<std::size_t>(kind);
  return i < static_cast<std::size_t>(OpKind::kMaxOpKind) ? kOpNames[i] : "?";
}

bool op_kind_from_name(std::string_view name, OpKind* out) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(OpKind::kMaxOpKind); ++i) {
    if (name == kOpNames[i]) {
      *out = static_cast<OpKind>(i);
      return true;
    }
  }
  return false;
}

bool op_kind_uses_dur(OpKind kind) {
  switch (kind) {
    case OpKind::kKillApp:
    case OpKind::kKillEngine:
    case OpKind::kHangApp: return false;
    default: return true;
  }
}

bool op_kind_uses_p(OpKind kind) {
  switch (kind) {
    case OpKind::kLossBurst:
    case OpKind::kDupBurst:
    case OpKind::kGilbertBurst: return true;
    default: return false;
  }
}

bool op_kind_uses_q(OpKind kind) { return kind == OpKind::kGilbertBurst; }

std::string serialize_op(const FaultOp& op) {
  return cat("op ", op_kind_name(op.kind), " at=", op.at, " node=", op.node,
             " dur=", op.dur, " p=", op.p_ppm, " q=", op.q_ppm);
}

FaultOp parse_op(std::string_view line) {
  line = trim(line);
  if (!starts_with(line, "op ")) {
    throw std::runtime_error(cat("chaos: expected 'op ...' line: ", std::string(line)));
  }
  std::string_view rest = line.substr(3);
  auto sp = rest.find(' ');
  if (sp == std::string_view::npos) {
    throw std::runtime_error(cat("chaos: truncated op line: ", std::string(line)));
  }
  FaultOp op;
  if (!op_kind_from_name(rest.substr(0, sp), &op.kind)) {
    throw std::runtime_error(
        cat("chaos: unknown op kind '", std::string(rest.substr(0, sp)), "'"));
  }
  op.at = parse_field(line, "at");
  op.node = static_cast<int>(parse_field(line, "node"));
  op.dur = parse_field(line, "dur");
  std::int64_t p = parse_field(line, "p");
  std::int64_t q = parse_field(line, "q");
  if (op.at < 0 || op.dur < 0 || op.node < 0 || p < 0 || p > 1'000'000 || q < 0 ||
      q > 1'000'000) {
    throw std::runtime_error(cat("chaos: op field out of range: ", std::string(line)));
  }
  op.p_ppm = static_cast<std::uint32_t>(p);
  op.q_ppm = static_cast<std::uint32_t>(q);
  return op;
}

void ScheduleSpec::normalize() {
  std::sort(ops.begin(), ops.end(), [](const FaultOp& a, const FaultOp& b) {
    return std::tuple(a.at, static_cast<int>(a.kind), a.node, a.dur, a.p_ppm, a.q_ppm) <
           std::tuple(b.at, static_cast<int>(b.kind), b.node, b.dur, b.p_ppm, b.q_ppm);
  });
}

std::string ScheduleSpec::serialize() const {
  std::string out = "schedule v1\n";
  for (const FaultOp& op : ops) {
    out += serialize_op(op);
    out += '\n';
  }
  out += "end\n";
  return out;
}

ScheduleSpec ScheduleSpec::parse(std::string_view text) {
  ScheduleSpec spec;
  bool in_body = false, ended = false;
  for (std::string_view raw : split(std::string(text), '\n')) {
    std::string_view line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    if (!in_body) {
      if (line != "schedule v1") {
        throw std::runtime_error(
            cat("chaos: expected 'schedule v1' header, got: ", std::string(line)));
      }
      in_body = true;
      continue;
    }
    if (line == "end") {
      ended = true;
      break;
    }
    spec.ops.push_back(parse_op(line));
  }
  if (!in_body || !ended) throw std::runtime_error("chaos: truncated schedule text");
  return spec;
}

std::uint64_t ScheduleSpec::fingerprint() const {
  std::string text = serialize();
  return fnv64(text.data(), text.size());
}

std::vector<CompiledOp> compile(const ScheduleSpec& spec, sim::FaultPlan& plan,
                                const Targets& targets) {
  std::vector<CompiledOp> compiled;
  compiled.reserve(spec.ops.size());
  for (const FaultOp& op : spec.ops) {
    int victim = targets.nodes.at(static_cast<std::size_t>(op.node));
    std::size_t first = plan.size();
    double p = static_cast<double>(op.p_ppm) * 1e-6;
    double q = static_cast<double>(op.q_ppm) * 1e-6;
    switch (op.kind) {
      case OpKind::kPowerCycle:
        plan.crash_node(op.at, victim);
        plan.boot_node(op.at + op.dur, victim);
        break;
      case OpKind::kOsCrash: plan.os_crash(op.at, victim, op.dur); break;
      case OpKind::kKillApp: plan.kill_process(op.at, victim, targets.app_process); break;
      case OpKind::kKillEngine:
        plan.kill_process(op.at, victim, targets.engine_process);
        break;
      case OpKind::kHangApp: plan.hang_process(op.at, victim, targets.app_process); break;
      case OpKind::kPartition: {
        // Isolate the victim; everyone else (other victims + bystanders)
        // stays connected on the majority side.
        std::vector<int> rest = targets.bystanders;
        for (int id : targets.nodes) {
          if (id != victim) rest.push_back(id);
        }
        plan.partition(op.at, targets.network, {{victim}, rest});
        plan.heal(op.at + op.dur, targets.network);
        break;
      }
      case OpKind::kNetDown:
        plan.network_down(op.at, targets.network, true);
        plan.network_down(op.at + op.dur, targets.network, false);
        break;
      case OpKind::kLossBurst: plan.loss_burst(op.at, targets.network, p, op.dur); break;
      case OpKind::kDupBurst: plan.dup_burst(op.at, targets.network, p, op.dur); break;
      case OpKind::kGilbertBurst:
        plan.burst_loss_window(op.at, targets.network, p, q, /*loss_bad=*/1.0, op.dur);
        break;
      case OpKind::kDiskFail: plan.disk_fail_window(op.at, victim, op.dur); break;
      case OpKind::kProbeBlackhole: {
        // Asymmetric fault: only the victim's link to its next-ranked
        // neighbor dies. Direct probes across it vanish while every
        // indirect path stays up — the case swim's k-proxy fan-out
        // exists for, and one all-to-all heartbeating misreads as a
        // dead peer.
        int other = targets.nodes.at(
            (static_cast<std::size_t>(op.node) + 1) % targets.nodes.size());
        plan.link(op.at, targets.network, victim, other, /*up=*/false);
        plan.link(op.at + op.dur, targets.network, victim, other, /*up=*/true);
        break;
      }
      case OpKind::kLinkFlap: {
        // The same link, flapping: up/down 4 times across the window —
        // probes intermittently lost, suspicion raised and refuted.
        int other = targets.nodes.at(
            (static_cast<std::size_t>(op.node) + 1) % targets.nodes.size());
        sim::SimTime period = std::max<sim::SimTime>(op.dur / 8, sim::milliseconds(1));
        plan.flap_link(op.at, targets.network, victim, other, period, 4);
        break;
      }
      case OpKind::kDeviceFault: {
        // Application-level fault: the plant I/O behind the OPC server
        // goes bad (every read BAD-quality, writes rejected), then
        // recovers. Compiles to zero steps when the deployment exposes
        // no device hook — provably inert, so the shrinker drops it.
        if (targets.set_device_faulted) {
          auto hook = targets.set_device_faulted;
          plan.custom(op.at, cat("device_fault node ", victim),
                      [hook, victim] { hook(victim, true); });
          plan.custom(op.at + op.dur, cat("device_restore node ", victim),
                      [hook, victim] { hook(victim, false); });
        }
        break;
      }
      case OpKind::kMaxOpKind:
        throw std::runtime_error("chaos: kMaxOpKind is not a schedulable op");
    }
    compiled.push_back(CompiledOp{first, plan.size() - first});
  }
  return compiled;
}

}  // namespace oftt::chaos
