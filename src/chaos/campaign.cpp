#include "chaos/campaign.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/strings.h"
#include "common/sweep.h"
#include "core/api.h"
#include "core/deployment.h"
#include "nt/runtime.h"
#include "obs/json.h"
#include "opc/client.h"
#include "opc/device.h"
#include "opc/server.h"
#include "sim/timer.h"

namespace oftt::chaos {

namespace {

/// The fixed evaluation workload: a checkpointable counter app (the
/// same shape as tests' CounterApp) ticking every 10 ms, so failover
/// traces have application state to restore and progress to resume.
/// Alongside it, a small OPC data plane — a two-signal PLC scanned at
/// 50 ms feeding an in-process change-driven group (100 ms tick, 5%
/// deadband) — so schedules exercise notification batch shapes,
/// deadband suppression, and the BAD-quality storm / all-GOOD recovery
/// that kDeviceFault injects.
class CampaignApp {
 public:
  explicit CampaignApp(sim::Process& process) : timer_(process.main_strand()) {
    auto& rt = nt::NtRuntime::of(process);
    rt.create_thread_static("app_main", 0x401000);
    region_ = &rt.memory().alloc("globals", 64);
    counter_ = nt::Cell<std::int64_t>(region_, 0);
    core::OFTTInitialize(process);
    core::Ftim& ftim = *core::Ftim::find(process);
    ftim.on_activate([this](bool) {
      timer_.start(sim::milliseconds(10), [this] { counter_.set(counter_.get() + 1); });
    });
    ftim.on_deactivate([this] { timer_.stop(); });

    device_ = std::make_shared<opc::PlcDevice>("plc", sim::milliseconds(50));
    device_->add_input("ai.temp",
                       std::make_unique<opc::SineSignal>(80.0, 10.0, 2.0, /*noise=*/0.5));
    device_->add_input("ai.flow",
                       std::make_unique<opc::RandomWalkSignal>(40.0, 1.5, 0.0, 100.0));
    device_->start(process.main_strand(), process.sim().fork_rng(process.name() + ".plc"));
    group_ = opc::OpcGroupObject::create(process, device_, "campaign",
                                         sim::milliseconds(100));
    group_->AddItems({"ai.temp", "ai.flow"}, nullptr);
    group_->SetDeadband(5.0, nullptr);
    sink_ = opc::DataSink::create([](std::uint32_t, const std::vector<opc::ItemState>&) {});
    group_->SetCallback(com::ComPtr<opc::IOPCDataCallback>(sink_.get()), nullptr);
  }

  void set_device_faulted(bool faulted) { device_->set_faulted(faulted); }

 private:
  nt::Region* region_ = nullptr;
  nt::Cell<std::int64_t> counter_;
  sim::PeriodicTimer timer_;
  std::shared_ptr<opc::PlcDevice> device_;
  com::ComPtr<opc::OpcGroupObject> group_;
  com::ComPtr<opc::DataSink> sink_;
};

/// Why a schedule earned its corpus slot — in check priority order.
enum class Reason { kDualPrimary, kP99, kCoverage };

const char* reason_name(Reason r) {
  switch (r) {
    case Reason::kDualPrimary: return "dual_primary";
    case Reason::kP99: return "p99_regression";
    case Reason::kCoverage: return "new_coverage";
  }
  return "?";
}

const char* reason_prefix(Reason r) {
  switch (r) {
    case Reason::kDualPrimary: return "dual";
    case Reason::kP99: return "p99";
    case Reason::kCoverage: return "cov";
  }
  return "?";
}

}  // namespace

EvalResult evaluate(const ScheduleSpec& spec, const EvalOptions& opts) {
  sim::Simulation sim(opts.sim_seed);
  sim.set_engine(opts.engine);
  core::PairDeploymentOptions dopts;
  dopts.with_diverter = true;
  dopts.app_factory = [](sim::Process& proc) { proc.attachment<CampaignApp>(proc); };
  core::PairDeployment dep(sim, dopts);

  CoverageProbe probe(sim.telemetry());

  Targets targets;
  targets.nodes = {dep.node_a().id(), dep.node_b().id()};
  targets.bystanders = {dep.monitor_node().id()};
  targets.network = 0;
  targets.set_device_faulted = [&dep](int node, bool faulted) {
    sim::Node* n = node == dep.node_a().id()   ? &dep.node_a()
                   : node == dep.node_b().id() ? &dep.node_b()
                                               : nullptr;
    if (!n) return;
    auto proc = n->find_process("app");  // null while the app is dead
    if (!proc) return;
    if (auto* app = proc->find_attachment<CampaignApp>()) {
      app->set_device_faulted(faulted);
    }
  };

  sim::FaultPlan plan(sim);
  std::vector<CompiledOp> compiled = compile(spec, plan, targets);
  plan.arm();
  sim.run_until(opts.run_for);
  probe.finish();

  EvalResult res;
  res.coverage = probe.map();
  res.history_hash = probe.history_hash();
  res.events = probe.events();
  res.dual_primary = probe.count_of(obs::EventKind::kDualPrimary);

  std::vector<std::int64_t> totals;
  for (const obs::FailoverTrace& tr : sim.telemetry().spans().traces()) {
    ++res.traces;
    if (tr.complete()) {
      ++res.complete_traces;
      totals.push_back(tr.total());
    }
  }
  if (!totals.empty()) {
    res.failover_max = *std::max_element(totals.begin(), totals.end());
    res.failover_p99 = obs::percentile(std::move(totals), 0.99);
  }

  res.op_fired.reserve(compiled.size());
  for (const CompiledOp& op : compiled) {
    bool fired = false;
    for (std::size_t s = 0; s < op.step_count; ++s) {
      if (plan.step_fired(op.first_step + s)) fired = true;
    }
    res.op_fired.push_back(fired);
  }
  return res;
}

ScheduleSpec baseline_schedule() {
  // The canonical single fault: one NT crash of the startup primary
  // (victim index 0 = node A) mid-run, rebooting 15 s later — one clean
  // detection -> promotion -> reroute cycle whose total anchors the p99
  // threshold. Crashing the backup instead would never complete a
  // failover trace and would leave the threshold unanchored.
  ScheduleSpec spec;
  spec.ops.push_back(
      FaultOp{OpKind::kOsCrash, sim::seconds(10), 0, sim::seconds(15), 0, 0});
  spec.normalize();
  return spec;
}

Campaign::Campaign(CampaignOptions options)
    : options_(std::move(options)), rng_(options_.seed) {}

bool Campaign::preserves(const EvalResult& r, const CoverageMap& required, bool p99_case,
                         bool dual_primary_case) const {
  if (dual_primary_case) return r.dual_primary > 0;
  if (p99_case) return r.failover_p99 > p99_threshold_;
  return r.coverage.covers(required);
}

ScheduleSpec Campaign::shrink(ScheduleSpec spec, const CoverageMap& required,
                              bool p99_case, bool dual_primary_case,
                              const EvalResult& full) {
  // Phase 1 — free removals: an op none of whose FaultPlan steps fired
  // scheduled only never-executed events, which cannot have perturbed
  // the executed history. Drop them without spending evaluations.
  ScheduleSpec cur;
  for (std::size_t i = 0; i < spec.ops.size(); ++i) {
    if (i < full.op_fired.size() && !full.op_fired[i]) continue;
    cur.ops.push_back(spec.ops[i]);
  }
  if (cur.ops.empty()) return spec;

  // Phase 2 — greedy delta-debugging: try removing each op (last
  // first, so cleanup/heal halves of windows go before their causes),
  // keeping any removal that preserves the survivor property. Restart
  // the pass after a success until a full pass removes nothing or the
  // evaluation budget runs out.
  int budget = options_.shrink_budget;
  bool progress = true;
  while (progress && budget > 0 && cur.ops.size() > 1) {
    progress = false;
    for (std::size_t i = cur.ops.size(); i-- > 0 && budget > 0;) {
      ScheduleSpec candidate = cur;
      candidate.ops.erase(candidate.ops.begin() + static_cast<std::ptrdiff_t>(i));
      EvalResult r = evaluate(candidate, options_.eval);
      ++evals_;
      --budget;
      if (preserves(r, required, p99_case, dual_primary_case)) {
        cur = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return cur;
}

void Campaign::run() {
  // Anchor: evaluate the reference single-fault schedule. Its coverage
  // seeds the global map (ordinary startup + one clean failover is not
  // "new"), its p99 sets the regression threshold.
  EvalResult base = evaluate(baseline_schedule(), options_.eval);
  ++evals_;
  baseline_p99_ = base.failover_p99;
  best_p99_ = base.failover_p99;
  p99_threshold_ =
      baseline_p99_ > 0
          ? static_cast<std::int64_t>(static_cast<double>(baseline_p99_) *
                                      options_.p99_factor)
          : std::numeric_limits<std::int64_t>::max();
  coverage_.merge(base.coverage);

  std::vector<ScheduleSpec> population;
  population.reserve(static_cast<std::size_t>(options_.population));
  for (int i = 0; i < options_.population; ++i) {
    population.push_back(
        random_schedule(rng_, options_.mutation, 2 + static_cast<int>(rng_.uniform(0, 3))));
  }

  for (int gen = 0; gen < options_.generations; ++gen) {
    int evals_before = evals_;
    // Parallel evaluation: each genome is one independent deterministic
    // simulation; results come back in population order, so triage
    // below is identical for 1 and N evaluator threads.
    std::vector<EvalResult> results =
        sweep_seeds(static_cast<int>(population.size()), [&](int i) {
          return evaluate(population[static_cast<std::size_t>(i)], options_.eval);
        });
    evals_ += static_cast<int>(population.size());

    std::vector<std::size_t> fit;  // parent pool for the next generation
    for (std::size_t i = 0; i < population.size(); ++i) {
      const EvalResult& r = results[i];
      best_p99_ = std::max(best_p99_, r.failover_p99);

      bool dual_case = r.dual_primary > 0;
      bool cov_case = r.coverage.new_bits(coverage_) > 0;
      bool p99_case = r.failover_p99 > p99_threshold_;

      if ((cov_case || p99_case) &&
          static_cast<int>(corpus_.size()) < options_.max_corpus) {
        Reason reason = dual_case  ? Reason::kDualPrimary
                        : p99_case ? Reason::kP99
                                   : Reason::kCoverage;
        CoverageMap required = r.coverage.minus(coverage_);
        ScheduleSpec shrunk = shrink(population[i], required, reason == Reason::kP99,
                                     reason == Reason::kDualPrimary, r);
        EvalResult final_r = evaluate(shrunk, options_.eval);
        ++evals_;
        std::uint64_t fp = shrunk.fingerprint();
        bool dup = std::find(corpus_fingerprints_.begin(), corpus_fingerprints_.end(),
                             fp) != corpus_fingerprints_.end() ||
                   std::find(corpus_hashes_.begin(), corpus_hashes_.end(),
                             final_r.history_hash) != corpus_hashes_.end();
        if (!dup) {
          CorpusEntry entry;
          char name[32];
          std::snprintf(name, sizeof name, "%s-%04d", reason_prefix(reason), next_name_);
          entry.name = name;
          ++next_name_;
          entry.reason = reason_name(reason);
          entry.eval_seed = options_.eval.sim_seed;
          entry.run_for = options_.eval.run_for;
          entry.history_hash = final_r.history_hash;
          entry.failover_p99 = final_r.failover_p99;
          entry.ops_before_shrink = population[i].ops.size();
          entry.spec = shrunk;
          corpus_fingerprints_.push_back(fp);
          corpus_hashes_.push_back(final_r.history_hash);
          corpus_.push_back(std::move(entry));
          coverage_.merge(final_r.coverage);
        }
        fit.push_back(i);
      }
      // Everything evaluated feeds the global map, so the same bits are
      // never "new" twice.
      coverage_.merge(r.coverage);
    }

    stats_.push_back(GenerationStats{gen, evals_ - evals_before, coverage_.count(),
                                     corpus_.size(), best_p99_});

    if (gen + 1 == options_.generations) break;

    // Breed the next generation: survivors and corpus members are
    // parents; a slice of fresh randoms keeps exploration alive.
    std::vector<ScheduleSpec> next;
    next.reserve(population.size());
    auto pick_parent = [&]() -> const ScheduleSpec& {
      bool from_corpus = !corpus_.empty() && rng_.chance(0.5);
      if (from_corpus) {
        return corpus_[static_cast<std::size_t>(rng_.uniform(
                           0, static_cast<std::int64_t>(corpus_.size()) - 1))]
            .spec;
      }
      if (!fit.empty() && rng_.chance(0.7)) {
        return population[fit[static_cast<std::size_t>(
            rng_.uniform(0, static_cast<std::int64_t>(fit.size()) - 1))]];
      }
      return population[static_cast<std::size_t>(
          rng_.uniform(0, static_cast<std::int64_t>(population.size()) - 1))];
    };
    for (int i = 0; i < options_.population; ++i) {
      if (rng_.chance(0.15)) {
        next.push_back(random_schedule(rng_, options_.mutation,
                                       2 + static_cast<int>(rng_.uniform(0, 3))));
        continue;
      }
      ScheduleSpec child;
      if (rng_.chance(0.3)) {
        child = splice(pick_parent(), pick_parent(), rng_, options_.mutation);
      } else {
        child = pick_parent();
      }
      int mutations = 1 + static_cast<int>(rng_.uniform(0, 2));
      for (int m = 0; m < mutations; ++m) mutate(child, rng_, options_.mutation);
      next.push_back(std::move(child));
    }
    population = std::move(next);
  }
}

}  // namespace oftt::chaos
