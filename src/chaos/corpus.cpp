#include "chaos/corpus.h"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "common/strings.h"

namespace oftt::chaos {

namespace {

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::uint64_t parse_hex16(std::string_view s) {
  if (s.size() != 16) throw std::runtime_error(cat("chaos: bad hash '", std::string(s), "'"));
  std::uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      throw std::runtime_error(cat("chaos: bad hash '", std::string(s), "'"));
    }
  }
  return v;
}

std::int64_t parse_int(std::string_view s, std::string_view what) {
  try {
    std::string str(s);
    std::size_t consumed = 0;
    std::int64_t v = std::stoll(str, &consumed);
    if (consumed != str.size()) throw std::invalid_argument(str);
    return v;
  } catch (const std::exception&) {
    throw std::runtime_error(cat("chaos: bad ", std::string(what), ": ", std::string(s)));
  }
}

/// "key value" line -> value; throws when the key does not match.
std::string_view expect_kv(std::string_view line, std::string_view key) {
  if (!starts_with(line, std::string(key) + " ")) {
    throw std::runtime_error(
        cat("chaos: corpus expected '", std::string(key), " ...', got: ", std::string(line)));
  }
  return trim(line.substr(key.size() + 1));
}

}  // namespace

std::string serialize_corpus(const std::vector<CorpusEntry>& corpus) {
  std::string out = "# OFTT chaos corpus v1\n";
  for (const CorpusEntry& e : corpus) {
    out += cat("entry ", e.name, "\n");
    out += cat("reason ", e.reason, "\n");
    out += cat("eval_seed ", e.eval_seed, "\n");
    out += cat("run_for ", e.run_for, "\n");
    out += cat("hash ", hex16(e.history_hash), "\n");
    out += cat("p99 ", e.failover_p99, "\n");
    out += e.spec.serialize();
    out += "end_entry\n";
  }
  return out;
}

std::vector<CorpusEntry> parse_corpus(std::string_view text) {
  std::vector<CorpusEntry> out;
  std::vector<std::string> lines = split(std::string(text), '\n');
  std::size_t i = 0;
  auto next_line = [&]() -> std::string_view {
    while (i < lines.size()) {
      std::string_view line = trim(lines[i]);
      ++i;
      if (line.empty() || line[0] == '#') continue;
      return line;
    }
    return {};
  };

  for (std::string_view line = next_line(); !line.empty(); line = next_line()) {
    CorpusEntry e;
    e.name = std::string(expect_kv(line, "entry"));
    e.reason = std::string(expect_kv(next_line(), "reason"));
    e.eval_seed =
        static_cast<std::uint64_t>(parse_int(expect_kv(next_line(), "eval_seed"), "eval_seed"));
    e.run_for = parse_int(expect_kv(next_line(), "run_for"), "run_for");
    e.history_hash = parse_hex16(expect_kv(next_line(), "hash"));
    e.failover_p99 = parse_int(expect_kv(next_line(), "p99"), "p99");
    // The schedule block: "schedule v1" .. "end".
    std::string schedule_text;
    std::string_view s = next_line();
    if (s != "schedule v1") {
      throw std::runtime_error(cat("chaos: corpus expected 'schedule v1', got: ", std::string(s)));
    }
    schedule_text += "schedule v1\n";
    for (s = next_line(); !s.empty() && s != "end"; s = next_line()) {
      schedule_text += std::string(s) + "\n";
    }
    if (s != "end") throw std::runtime_error("chaos: corpus schedule block not terminated");
    schedule_text += "end\n";
    e.spec = ScheduleSpec::parse(schedule_text);
    if (next_line() != "end_entry") {
      throw std::runtime_error(cat("chaos: corpus entry '", e.name, "' not terminated"));
    }
    out.push_back(std::move(e));
  }
  return out;
}

EvalResult replay(const CorpusEntry& entry) {
  EvalOptions opts;
  opts.sim_seed = entry.eval_seed;
  opts.run_for = entry.run_for;
  return evaluate(entry.spec, opts);
}

EvalResult replay(const CorpusEntry& entry, const sim::EngineConfig& engine) {
  EvalOptions opts;
  opts.sim_seed = entry.eval_seed;
  opts.run_for = entry.run_for;
  opts.engine = engine;
  return evaluate(entry.spec, opts);
}

}  // namespace oftt::chaos
