// ScheduleSpec: the serializable genome of the chaos-campaign search.
//
// A schedule is a timed list of fault ops — process/OS crashes, network
// partitions, loss/duplication bursts, disk write-fail windows —
// expressed against *victim indices* (0 = node A, 1 = node B of the
// evaluation deployment) rather than raw sim node ids, so the same
// genome replays against any freshly-built deployment. compile() lowers
// the ops onto a sim::FaultPlan and returns, per op, the range of plan
// steps it produced, which is how the shrinker maps fired plan steps
// back onto genome ops (an op none of whose steps fired is provably
// inert and can be dropped without re-evaluation).
//
// Determinism contract: serialize() emits a canonical, integer-only
// text form (probabilities as parts-per-million, times as ns) and
// parse() round-trips it exactly; normalize() sorts ops into a
// canonical order so two genomes with the same ops serialize
// identically. The campaign's corpus, the pinned regression scenarios,
// and the BENCH_campaign.json export all speak this format.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/fault_plan.h"
#include "sim/time.h"

namespace oftt::chaos {

/// Every fault dimension the search mutates over. The numeric value is
/// part of the serialized format — append, never renumber.
enum class OpKind : std::uint8_t {
  kPowerCycle = 0,    // node: power failure, field tech resets after dur
  kOsCrash = 1,       // node: NT crash (BSOD), auto-reboot after dur
  kKillApp = 2,       // node: kill the application process
  kKillEngine = 3,    // node: kill the OFTT engine process
  kHangApp = 4,       // node: hang every app thread (fail-silent, not dead)
  kPartition = 5,     // isolate node from the rest of the segment for dur
  kNetDown = 6,       // whole segment down for dur (cable pull at the switch)
  kLossBurst = 7,     // uniform datagram loss p_ppm for dur
  kDupBurst = 8,      // datagram duplication p_ppm for dur
  kGilbertBurst = 9,  // Gilbert-Elliott burst channel for dur:
                      //   p_ppm = P(Good->Bad), q_ppm = P(Bad->Good), Bad = blackout
  kDiskFail = 10,     // every disk write on node fails for dur
  // Swim-detection faults: per-member probe paths, not whole segments —
  // exactly the asymmetries that separate a dead member from a lossy
  // link in the SWIM indirect-probe design.
  kProbeBlackhole = 11,  // cut victim <-> its next-ranked neighbor for dur
                         // (direct probes vanish; indirect paths stay up)
  kLinkFlap = 12,        // flap that same link 4x with period dur/4
  kDeviceFault = 13,     // fault the victim's OPC device for dur: reads go
                         // BAD-quality (a storm of quality-change
                         // notifications), writes fail, then restore
  kMaxOpKind = 14,
};

const char* op_kind_name(OpKind kind);
/// False (and *out untouched) for an unknown name.
bool op_kind_from_name(std::string_view name, OpKind* out);
/// Does this op kind use the dur / p_ppm / q_ppm field?
bool op_kind_uses_dur(OpKind kind);
bool op_kind_uses_p(OpKind kind);
bool op_kind_uses_q(OpKind kind);

struct FaultOp {
  OpKind kind = OpKind::kKillApp;
  sim::SimTime at = 0;       // injection time (sim ns)
  int node = 0;              // victim index into Targets::nodes
  sim::SimTime dur = 0;      // window length / reboot delay (ns); 0 if unused
  std::uint32_t p_ppm = 0;   // probability knob, parts-per-million
  std::uint32_t q_ppm = 0;   // second probability knob (Gilbert-Elliott exit)

  bool operator==(const FaultOp& o) const {
    return kind == o.kind && at == o.at && node == o.node && dur == o.dur &&
           p_ppm == o.p_ppm && q_ppm == o.q_ppm;
  }
};

/// One serialized line: "op <kind> at=<ns> node=<n> dur=<ns> p=<ppm> q=<ppm>".
std::string serialize_op(const FaultOp& op);
/// Parse one op line; throws std::runtime_error on malformed input.
FaultOp parse_op(std::string_view line);

struct ScheduleSpec {
  std::vector<FaultOp> ops;

  /// Canonical op order: (at, kind, node, dur, p, q) ascending. Two
  /// specs with the same op multiset serialize identically afterwards.
  void normalize();

  /// Canonical text form:
  ///   schedule v1
  ///   op <kind> at=... node=... dur=... p=... q=...
  ///   end
  std::string serialize() const;
  /// Inverse of serialize(); throws std::runtime_error on malformed or
  /// version-skewed input.
  static ScheduleSpec parse(std::string_view text);

  /// FNV-1a of the canonical serialization — the corpus dedup key.
  std::uint64_t fingerprint() const;

  bool operator==(const ScheduleSpec& o) const { return ops == o.ops; }
};

/// What the victim indices resolve to in one concrete deployment.
struct Targets {
  std::vector<int> nodes;       // victim index -> sim node id
  int network = 0;              // segment the network ops act on
  /// Non-victim nodes that stay connected to the surviving side of a
  /// partition (the test PC / monitor node).
  std::vector<int> bystanders;
  std::string app_process = "app";
  std::string engine_process = "oftt_engine";
  /// Application hook for kDeviceFault: fault/restore the OPC device
  /// hosted on `node` (a sim node id). Unset => kDeviceFault ops compile
  /// to zero steps (provably inert, shrinkable).
  std::function<void(int node, bool faulted)> set_device_faulted;
};

/// Range of FaultPlan steps one genome op compiled into.
struct CompiledOp {
  std::size_t first_step = 0;
  std::size_t step_count = 0;
};

/// Lower every op onto `plan` (declare only — the caller arms). Ops
/// with a victim index outside targets.nodes throw std::out_of_range.
std::vector<CompiledOp> compile(const ScheduleSpec& spec, sim::FaultPlan& plan,
                                const Targets& targets);

}  // namespace oftt::chaos
