// Coverage signal for the fault-schedule search: which distinct
// recovery behaviours a run exercised, hashed into a fixed bitmap.
//
// The probe is a pure obs::EventBus subscriber — components publish
// their normal telemetry and the probe derives features:
//
//   - per-node event-kind presence and (prev, next) event bigrams
//   - engine role-transition pairs (backup->primary, primary->shutdown, ...)
//   - replication policy switches (old mode -> new mode)
//   - journal recovery depth (log2 bucket of records replayed)
//   - failover span shape: which milestones a trace reached
//     (quorum? rerouted?) and log2 buckets of each phase duration
//
// Two runs that recover the same way light the same bits; a schedule
// that drives the system through a *new* combination — a failover that
// detects but never reroutes, a journal replay 64 records deep, a
// dual-primary window — lights bits no earlier run has, which is what
// the campaign treats as progress. The probe also folds every event
// into an FNV event-history hash: the byte-identical-replay fingerprint
// the pinned corpus scenarios are diffed against.
#pragma once

#include <array>
#include <cstdint>
#include <map>

#include "obs/event_bus.h"
#include "obs/telemetry.h"

namespace oftt::chaos {

class CoverageMap {
 public:
  /// 16384 feature bits (2 KiB) — roomy next to the few hundred
  /// distinct features current scenarios produce, so collisions stay
  /// rare without making merges expensive.
  static constexpr std::size_t kBits = 1u << 14;

  /// Hash `feature` to a bit and set it; true if it was newly set.
  bool set(std::uint64_t feature);
  bool test(std::uint64_t feature) const;

  std::size_t count() const;
  /// Bits set here that `base` does not have.
  std::size_t new_bits(const CoverageMap& base) const;
  /// The delta bitmap (bits set here and not in `base`).
  CoverageMap minus(const CoverageMap& base) const;
  /// True when every bit of `required` is set here (superset test; the
  /// shrinker's "still reproduces the interesting coverage" predicate).
  bool covers(const CoverageMap& required) const;
  void merge(const CoverageMap& other);

  bool operator==(const CoverageMap& o) const { return words_ == o.words_; }

 private:
  std::array<std::uint64_t, kBits / 64> words_{};
};

/// Mix a tagged feature tuple into one 64-bit feature id.
std::uint64_t coverage_feature(std::uint64_t tag, std::uint64_t a, std::uint64_t b = 0,
                               std::uint64_t c = 0);

class CoverageProbe {
 public:
  /// Subscribes to the telemetry bus; must outlive the run it observes.
  explicit CoverageProbe(obs::Telemetry& telemetry);
  ~CoverageProbe();

  CoverageProbe(const CoverageProbe&) = delete;
  CoverageProbe& operator=(const CoverageProbe&) = delete;

  /// Fold the failover-span shape features (milestone mask + phase
  /// duration buckets). Call once, after the run; idempotent.
  void finish();

  const CoverageMap& map() const { return map_; }
  /// FNV fold of (at, kind, node, a, b) of every published event — the
  /// replay-identity fingerprint.
  std::uint64_t history_hash() const { return hash_; }
  std::uint64_t events() const { return events_; }
  /// How many events of `kind` the run published (dual-primary
  /// sightings, takeover counts, ... — fitness inputs).
  std::uint64_t count_of(obs::EventKind kind) const {
    return kind_counts_[static_cast<std::size_t>(kind)];
  }

 private:
  void on_event(const obs::Event& e);

  obs::Telemetry* telemetry_;
  obs::EventBus::SubscriberId sub_ = 0;
  CoverageMap map_;
  std::uint64_t hash_ = 14695981039346656037ull;
  std::uint64_t events_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(obs::EventKind::kMaxKind)>
      kind_counts_{};
  std::map<int, std::uint32_t> last_kind_;  // per-node bigram state
  std::map<int, std::uint64_t> last_role_;  // per-node previous role
  bool finished_ = false;
};

}  // namespace oftt::chaos
