#include "chaos/mutate.h"

#include <algorithm>

namespace oftt::chaos {

namespace {

/// Round times to 1 ms so serialized genomes stay readable and the
/// search space is not cluttered with sub-ms distinctions no detector
/// in the system can resolve (heartbeat periods are 100 ms).
constexpr sim::SimTime kTimeQuantum = sim::milliseconds(1);

sim::SimTime quantize(sim::SimTime t) { return (t / kTimeQuantum) * kTimeQuantum; }

std::uint32_t clamp_ppm(std::int64_t v) {
  return static_cast<std::uint32_t>(std::clamp<std::int64_t>(v, 0, 1'000'000));
}

}  // namespace

void clamp_op(FaultOp& op, const MutationParams& params) {
  op.at = quantize(std::clamp(op.at, params.min_at, params.horizon));
  op.node = std::clamp(op.node, 0, params.nodes - 1);
  if (op_kind_uses_dur(op.kind)) {
    op.dur = quantize(std::clamp(op.dur, params.min_dur, params.max_dur));
  } else {
    op.dur = 0;
  }
  if (op_kind_uses_p(op.kind)) {
    // A zero-probability burst is dead weight; keep the knob meaningful.
    op.p_ppm = clamp_ppm(std::max<std::int64_t>(op.p_ppm, 10'000));
  } else {
    op.p_ppm = 0;
  }
  if (op_kind_uses_q(op.kind)) {
    op.q_ppm = clamp_ppm(std::max<std::int64_t>(op.q_ppm, 1'000));
  } else {
    op.q_ppm = 0;
  }
}

FaultOp random_op(sim::Rng& rng, const MutationParams& params) {
  FaultOp op;
  op.kind = static_cast<OpKind>(
      rng.uniform(0, static_cast<std::int64_t>(OpKind::kMaxOpKind) - 1));
  op.at = rng.uniform(params.min_at, params.horizon);
  op.node = static_cast<int>(rng.uniform(0, params.nodes - 1));
  op.dur = rng.uniform(params.min_dur, params.max_dur);
  op.p_ppm = clamp_ppm(rng.uniform(10'000, 900'000));
  op.q_ppm = clamp_ppm(rng.uniform(1'000, 500'000));
  clamp_op(op, params);
  return op;
}

ScheduleSpec random_schedule(sim::Rng& rng, const MutationParams& params, int op_count) {
  ScheduleSpec spec;
  op_count = std::clamp(op_count, 1, params.max_ops);
  for (int i = 0; i < op_count; ++i) spec.ops.push_back(random_op(rng, params));
  spec.normalize();
  return spec;
}

void mutate(ScheduleSpec& spec, sim::Rng& rng, const MutationParams& params) {
  if (spec.ops.empty()) {
    spec.ops.push_back(random_op(rng, params));
    spec.normalize();
    return;
  }
  auto& op = spec.ops[static_cast<std::size_t>(
      rng.uniform(0, static_cast<std::int64_t>(spec.ops.size()) - 1))];
  switch (rng.uniform(0, 4)) {
    case 0: {  // perturb injection time by up to ±10% of the window
      sim::SimTime jitter = (params.horizon - params.min_at) / 10;
      op.at += rng.uniform(-jitter, jitter);
      break;
    }
    case 1: {  // perturb the window length / probability knob
      if (op_kind_uses_p(op.kind) && rng.chance(0.5)) {
        op.p_ppm = clamp_ppm(static_cast<std::int64_t>(op.p_ppm) +
                             rng.uniform(-200'000, 200'000));
      } else {
        op.dur += rng.uniform(-params.max_dur / 4, params.max_dur / 4);
      }
      break;
    }
    case 2:  // retarget the victim
      op.node = static_cast<int>(rng.uniform(0, params.nodes - 1));
      break;
    case 3:  // add an op (respecting the genome cap)
      if (static_cast<int>(spec.ops.size()) < params.max_ops) {
        spec.ops.push_back(random_op(rng, params));
      } else {
        op = random_op(rng, params);  // cap reached: replace instead
      }
      break;
    case 4:  // remove an op (never below one)
      if (spec.ops.size() > 1) {
        spec.ops.erase(spec.ops.begin() +
                       rng.uniform(0, static_cast<std::int64_t>(spec.ops.size()) - 1));
      }
      break;
  }
  for (auto& o : spec.ops) clamp_op(o, params);
  spec.normalize();
}

ScheduleSpec splice(const ScheduleSpec& a, const ScheduleSpec& b, sim::Rng& rng,
                    const MutationParams& params) {
  sim::SimTime cut = rng.uniform(params.min_at, params.horizon);
  ScheduleSpec out;
  for (const FaultOp& op : a.ops) {
    if (op.at < cut) out.ops.push_back(op);
  }
  for (const FaultOp& op : b.ops) {
    if (op.at >= cut) out.ops.push_back(op);
  }
  if (out.ops.empty()) out.ops.push_back(random_op(rng, params));
  if (static_cast<int>(out.ops.size()) > params.max_ops) {
    out.ops.resize(static_cast<std::size_t>(params.max_ops));
  }
  for (auto& o : out.ops) clamp_op(o, params);
  out.normalize();
  return out;
}

}  // namespace oftt::chaos
