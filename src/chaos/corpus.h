// Corpus (de)serialization: the checked-in text format for worst-case
// schedules. A corpus file is a sequence of entries, each carrying the
// replay parameters (eval seed, run length) and the expected
// event-history hash alongside the schedule itself, so a regression
// test can replay every entry and diff the hash byte-for-byte:
//
//   # OFTT chaos corpus v1
//   entry cov-0001
//   reason new_coverage
//   eval_seed 42
//   run_for 75000000000
//   hash 00a1b2c3d4e5f607
//   p99 812345678
//   schedule v1
//   op os_crash at=10000000000 node=1 dur=15000000000 p=0 q=0
//   end
//   end_entry
#pragma once

#include <string>
#include <vector>

#include "chaos/campaign.h"

namespace oftt::chaos {

std::string serialize_corpus(const std::vector<CorpusEntry>& corpus);

/// Inverse of serialize_corpus; throws std::runtime_error on malformed
/// input (a corrupt pinned corpus must fail loudly, not replay
/// something else).
std::vector<CorpusEntry> parse_corpus(std::string_view text);

/// Replay one corpus entry and return the freshly-computed result; the
/// caller diffs result.history_hash against entry.history_hash.
EvalResult replay(const CorpusEntry& entry);

/// Replay under an explicit engine config (parallel-engine equivalence
/// tests). Pinned hashes only apply to the default sequential engine.
EvalResult replay(const CorpusEntry& entry, const sim::EngineConfig& engine);

}  // namespace oftt::chaos
