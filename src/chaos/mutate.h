// Mutation operators over ScheduleSpec genomes. Every random decision
// draws from a caller-supplied sim::Rng, so a campaign seeded once
// replays its entire mutation history — the search itself obeys the
// same determinism contract as the simulations it drives.
#pragma once

#include "chaos/schedule.h"
#include "sim/rng.h"

namespace oftt::chaos {

struct MutationParams {
  /// Injection window: ops land in [min_at, horizon]. Leave headroom
  /// between horizon and the evaluation run length so late faults still
  /// get their failover measured.
  sim::SimTime min_at = sim::seconds(5);
  sim::SimTime horizon = sim::seconds(60);
  /// Window-length bounds for windowed ops (reboot delays, partitions,
  /// loss bursts, disk-fail windows).
  sim::SimTime min_dur = sim::milliseconds(200);
  sim::SimTime max_dur = sim::seconds(25);
  /// Genome size cap; add-op mutations respect it.
  int max_ops = 12;
  /// Number of victim indices (the evaluation deployment's node count).
  int nodes = 2;
};

/// Clamp an op's fields into the params' bounds (used after perturbation
/// and after parsing externally-supplied schedules).
void clamp_op(FaultOp& op, const MutationParams& params);

/// Draw one uniformly-random op.
FaultOp random_op(sim::Rng& rng, const MutationParams& params);

/// A fresh random genome with `op_count` ops (normalized).
ScheduleSpec random_schedule(sim::Rng& rng, const MutationParams& params, int op_count);

/// Apply one random mutation in place: perturb an op's time, perturb a
/// window/probability knob, retarget the victim node, add an op, or
/// remove an op. The result is re-normalized. An empty schedule always
/// gains an op.
void mutate(ScheduleSpec& spec, sim::Rng& rng, const MutationParams& params);

/// Single-point time crossover: ops of `a` before a random cut time
/// plus ops of `b` after it, truncated to max_ops (normalized).
ScheduleSpec splice(const ScheduleSpec& a, const ScheduleSpec& b, sim::Rng& rng,
                    const MutationParams& params);

}  // namespace oftt::chaos
