#include "chaos/coverage.h"

#include <bit>

#include "obs/span.h"

namespace oftt::chaos {

namespace {

/// splitmix64 finalizer — cheap, well-mixed, and already the idiom of
/// sim::Rng.
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// log2 bucket (0 for 0) — collapses durations/depths into coarse
/// magnitude classes so coverage rewards "an order of magnitude worse",
/// not nanosecond noise.
std::uint64_t bucket(std::uint64_t v) {
  return v == 0 ? 0 : static_cast<std::uint64_t>(64 - std::countl_zero(v));
}

void fold(std::uint64_t& h, std::uint64_t v) {
  h ^= v;
  h *= 1099511628211ull;  // FNV-1a prime, same fold as bench_kernel
}

// Feature tags (arbitrary but stable).
constexpr std::uint64_t kTagKind = 1;
constexpr std::uint64_t kTagBigram = 2;
constexpr std::uint64_t kTagRole = 3;
constexpr std::uint64_t kTagPolicy = 4;
constexpr std::uint64_t kTagJournal = 5;
constexpr std::uint64_t kTagSpanShape = 6;
constexpr std::uint64_t kTagSpanPhase = 7;
constexpr std::uint64_t kTagSwim = 8;
constexpr std::uint64_t kTagOpc = 9;

}  // namespace

bool CoverageMap::set(std::uint64_t feature) {
  std::uint64_t h = mix(feature);
  std::size_t bit = static_cast<std::size_t>(h % kBits);
  std::uint64_t mask = std::uint64_t{1} << (bit % 64);
  std::uint64_t& word = words_[bit / 64];
  bool fresh = (word & mask) == 0;
  word |= mask;
  return fresh;
}

bool CoverageMap::test(std::uint64_t feature) const {
  std::uint64_t h = mix(feature);
  std::size_t bit = static_cast<std::size_t>(h % kBits);
  return (words_[bit / 64] & (std::uint64_t{1} << (bit % 64))) != 0;
}

std::size_t CoverageMap::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

std::size_t CoverageMap::new_bits(const CoverageMap& base) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] & ~base.words_[i]));
  }
  return n;
}

CoverageMap CoverageMap::minus(const CoverageMap& base) const {
  CoverageMap out;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    out.words_[i] = words_[i] & ~base.words_[i];
  }
  return out;
}

bool CoverageMap::covers(const CoverageMap& required) const {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((required.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

void CoverageMap::merge(const CoverageMap& other) {
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

std::uint64_t coverage_feature(std::uint64_t tag, std::uint64_t a, std::uint64_t b,
                               std::uint64_t c) {
  std::uint64_t h = 14695981039346656037ull;
  fold(h, tag);
  fold(h, a);
  fold(h, b);
  fold(h, c);
  return h;
}

CoverageProbe::CoverageProbe(obs::Telemetry& telemetry) : telemetry_(&telemetry) {
  sub_ = telemetry_->bus().subscribe_all([this](const obs::Event& e) { on_event(e); });
}

CoverageProbe::~CoverageProbe() { telemetry_->bus().unsubscribe(sub_); }

void CoverageProbe::on_event(const obs::Event& e) {
  ++events_;
  if (static_cast<std::size_t>(e.kind) < kind_counts_.size()) {
    ++kind_counts_[static_cast<std::size_t>(e.kind)];
  }
  fold(hash_, static_cast<std::uint64_t>(e.at));
  fold(hash_, static_cast<std::uint64_t>(e.kind));
  fold(hash_, static_cast<std::uint64_t>(static_cast<std::int64_t>(e.node)));
  fold(hash_, e.a);
  fold(hash_, e.b);

  auto kind = static_cast<std::uint32_t>(e.kind);
  auto node = static_cast<std::uint64_t>(static_cast<std::int64_t>(e.node));
  map_.set(coverage_feature(kTagKind, kind, node));
  std::uint32_t& prev = last_kind_[e.node];
  map_.set(coverage_feature(kTagBigram, node, prev, kind));
  prev = kind;

  switch (e.kind) {
    case obs::EventKind::kRoleChange: {
      std::uint64_t& prev_role = last_role_[e.node];
      map_.set(coverage_feature(kTagRole, node, prev_role, e.a));
      prev_role = e.a;
      break;
    }
    case obs::EventKind::kPolicySwitch:
      map_.set(coverage_feature(kTagPolicy, e.a, e.b));
      break;
    case obs::EventKind::kJournalRecovered:
      map_.set(coverage_feature(kTagJournal, node, bucket(e.a)));
      break;
    case obs::EventKind::kSwimSuspect:
    case obs::EventKind::kSwimRefute:
    case obs::EventKind::kSwimDeadConfirm:
      // Detection-plane transitions: which member was accused / refuted
      // / confirmed, and how deep its incarnation clock has been driven
      // (each refutation bumps it — repeated accusation cycles are a
      // distinct behaviour worth rewarding).
      map_.set(coverage_feature(kTagSwim, kind, e.a, bucket(e.b)));
      break;
    case obs::EventKind::kOpcBatch:
      // Data-plane batch shapes: (announced, suppressed) magnitude pair
      // per publishing group — a BAD-quality storm, a deadband-heavy
      // steady state, and a quiet plant are all distinct features.
      map_.set(coverage_feature(kTagOpc, kind, bucket(e.a), bucket(e.b)));
      break;
    case obs::EventKind::kOpcBatchDrop:
      map_.set(coverage_feature(kTagOpc, kind, node, bucket(e.b)));
      break;
    case obs::EventKind::kOpcDeviceFault:
      map_.set(coverage_feature(kTagOpc, kind, node, e.a));
      break;
    default: break;
  }
}

void CoverageProbe::finish() {
  if (finished_) return;
  finished_ = true;
  for (const obs::FailoverTrace& tr : telemetry_->spans().traces()) {
    // Milestone presence mask: which stations this incident reached.
    std::uint64_t shape = 0;
    shape |= (tr.detected_at >= 0 ? 1u : 0u) << 0;
    shape |= (tr.quorum_at >= 0 ? 1u : 0u) << 1;
    shape |= (tr.promoted_at >= 0 ? 1u : 0u) << 2;
    shape |= (tr.active_at >= 0 ? 1u : 0u) << 3;
    shape |= (tr.rerouted_at >= 0 ? 1u : 0u) << 4;
    map_.set(coverage_feature(kTagSpanShape, shape,
                              bucket(static_cast<std::uint64_t>(
                                  tr.total() > 0 ? tr.total() : 0))));
    for (auto phase :
         {obs::FailoverPhase::kDetection, obs::FailoverPhase::kAckCollection,
          obs::FailoverPhase::kNegotiation, obs::FailoverPhase::kPromotion,
          obs::FailoverPhase::kReplay}) {
      sim::SimTime d = tr.phase(phase);
      if (d >= 0) {
        map_.set(coverage_feature(kTagSpanPhase, static_cast<std::uint64_t>(phase),
                                  bucket(static_cast<std::uint64_t>(d))));
      }
    }
  }
}

}  // namespace oftt::chaos
