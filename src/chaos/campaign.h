// Campaign: coverage-guided search over fault schedules.
//
// Instead of sampling seeds blindly (bench_chaos E9), the campaign
// holds the workload fixed and searches the *schedule* space: a
// population of ScheduleSpec genomes is evaluated in parallel on the
// shared sweep thread pool (each evaluation is one fully independent
// deterministic simulation), survivors are the schedules that light new
// coverage bits or push failover p99 past 1.2x a reference baseline,
// and each survivor is shrunk to a minimal reproducer before joining
// the corpus. The determinism contract is end-to-end:
//
//   - every evaluation seeds its own Simulation with the same eval
//     seed, so a schedule's event-history hash is a pure function of
//     the genome — byte-identical across evaluator thread counts;
//   - every mutation decision draws from the campaign Rng on the
//     coordinating thread, in population order;
//
// so one (campaign seed, budget) pair always finds the same corpus,
// and a corpus entry replays byte-identically forever — which is what
// lets worst-case schedules be checked in as pinned regression
// scenarios (tests/chaos/corpus_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/coverage.h"
#include "chaos/mutate.h"
#include "chaos/schedule.h"
#include "sim/simulation.h"

namespace oftt::chaos {

struct EvalOptions {
  /// Simulation seed — identical for every evaluation, so the schedule
  /// is the only variable between runs.
  std::uint64_t sim_seed = 42;
  /// Run length; leave headroom past MutationParams::horizon so late
  /// faults still complete their failover.
  sim::SimTime run_for = sim::seconds(75);
  /// Engine selection for the evaluation Simulation. The default
  /// (sequential) keeps every pinned corpus hash; the parallel-engine
  /// equivalence tests replay entries under kParallel and assert the
  /// hash is invariant across worker counts.
  sim::EngineConfig engine;
};

/// Everything one evaluation learned about one schedule.
struct EvalResult {
  CoverageMap coverage;
  std::uint64_t history_hash = 0;
  std::uint64_t events = 0;
  /// Failover totals across *complete* traces (evidence -> reroute).
  std::int64_t failover_p99 = 0;
  std::int64_t failover_max = 0;
  int traces = 0;
  int complete_traces = 0;
  /// kDualPrimary sightings (the invariant the paper's startup logic
  /// nearly broke; any sighting is a worst-case find).
  std::uint64_t dual_primary = 0;
  /// Per-genome-op: did any of its compiled FaultPlan steps fire?
  /// (false = provably inert: the op cannot have influenced the run).
  std::vector<bool> op_fired;
};

/// Build the reference pair deployment (diverter + counter workload),
/// compile + arm `spec`, run, and measure. Pure function of
/// (spec, opts) — the campaign's parallel-evaluation unit.
EvalResult evaluate(const ScheduleSpec& spec, const EvalOptions& opts);

/// The reference single-fault schedule whose failover p99 anchors the
/// "1.2x worse than baseline" survivor criterion.
ScheduleSpec baseline_schedule();

struct CampaignOptions {
  std::uint64_t seed = 1;  // drives mutation/selection only
  EvalOptions eval;
  MutationParams mutation;
  int population = 16;
  int generations = 8;
  /// Survivor criterion: failover p99 above `p99_factor` x baseline.
  double p99_factor = 1.2;
  /// Cap on shrink re-evaluations per survivor (the greedy loop is
  /// quadratic in ops in the worst case).
  int shrink_budget = 48;
  int max_corpus = 24;
};

struct CorpusEntry {
  std::string name;    // "cov-0001" / "p99-0002"
  std::string reason;  // "new_coverage" | "p99_regression" | "dual_primary"
  std::uint64_t eval_seed = 0;
  sim::SimTime run_for = 0;
  std::uint64_t history_hash = 0;  // of the *shrunk* schedule's replay
  std::int64_t failover_p99 = 0;
  std::size_t ops_before_shrink = 0;
  ScheduleSpec spec;  // shrunk, normalized
};

struct GenerationStats {
  int generation = 0;
  int evals = 0;
  std::size_t coverage_bits = 0;  // global, cumulative
  std::size_t corpus_size = 0;
  std::int64_t best_p99 = 0;  // worst (largest) failover p99 seen so far
};

class Campaign {
 public:
  explicit Campaign(CampaignOptions options);

  /// Run the full budget (generations x population evaluations, plus
  /// shrink re-evaluations for survivors).
  void run();

  const std::vector<CorpusEntry>& corpus() const { return corpus_; }
  const CoverageMap& coverage() const { return coverage_; }
  const std::vector<GenerationStats>& generations() const { return stats_; }
  std::int64_t baseline_p99() const { return baseline_p99_; }
  int total_evals() const { return evals_; }
  const CampaignOptions& options() const { return options_; }

 private:
  /// Greedy minimization: drop provably-inert ops for free, then try
  /// removing each remaining op (re-evaluating) while the survivor
  /// property — still covers `required` bits / still above the p99
  /// threshold / still shows dual-primary — holds.
  ScheduleSpec shrink(ScheduleSpec spec, const CoverageMap& required, bool p99_case,
                      bool dual_primary_case, const EvalResult& full);

  bool preserves(const EvalResult& r, const CoverageMap& required, bool p99_case,
                 bool dual_primary_case) const;

  CampaignOptions options_;
  sim::Rng rng_;
  CoverageMap coverage_;
  std::vector<CorpusEntry> corpus_;
  std::vector<std::uint64_t> corpus_fingerprints_;
  std::vector<std::uint64_t> corpus_hashes_;
  std::vector<GenerationStats> stats_;
  std::int64_t baseline_p99_ = 0;
  std::int64_t p99_threshold_ = 0;
  std::int64_t best_p99_ = 0;
  int evals_ = 0;
  int next_name_ = 1;
};

}  // namespace oftt::chaos
